"""Ablation: selective proxying via the admission policy (§5, FW#3).

A mixed workload — one incast below the loss crossover, one above — run
three ways: never proxy, always proxy, and gated by the crossover policy.
Selective proxying should match always-proxy on the large incast while
sparing the small one the extra hop and the proxy a pointless assignment.
"""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.orchestration import ProxyAdmissionPolicy, run_concurrent_incasts
from repro.units import megabytes
from repro.workloads import uniform_incast

from benchmarks.conftest import run_once


def mixed_jobs():
    return [
        uniform_incast("below-crossover", degree=2, total_bytes=megabytes(2),
                       receiver_index=0, sender_offset=0),
        uniform_incast("above-crossover", degree=2, total_bytes=megabytes(20),
                       receiver_index=1, sender_offset=2),
    ]


def run(variant):
    cfg = small_interdc_config()
    transport = TransportConfig(payload_bytes=4096)
    if variant == "never":
        return run_concurrent_incasts(
            mixed_jobs(), scheme="baseline", strategy="none",
            interdc=cfg, transport=transport,
        )
    return run_concurrent_incasts(
        mixed_jobs(), scheme="streamlined", strategy="central",
        interdc=cfg, transport=transport,
        admission=ProxyAdmissionPolicy() if variant == "selective" else None,
    )


@pytest.mark.parametrize("variant", ["never", "always", "selective"])
def test_admission_variant(benchmark, variant):
    """One proxying policy over the mixed workload."""
    result = run_once(benchmark, lambda: run(variant))
    assert result.completed
    benchmark.extra_info.update(
        ablation="admission", variant=variant,
        ict_ms={name: round(v / 1e9, 3) for name, v in result.ict_ps.items()},
        proxied=sorted(result.proxy_assignments),
    )


def test_selective_matches_always_where_it_matters(benchmark):
    """Gating keeps the big win and skips the pointless assignment."""

    def compare():
        return {variant: run(variant) for variant in ("never", "always", "selective")}

    results = run_once(benchmark, compare)
    large = "above-crossover"
    small = "below-crossover"
    # the large incast keeps the full proxy benefit under gating
    assert results["selective"].ict_ps[large] < 0.5 * results["never"].ict_ps[large]
    # the small incast is within noise of direct transmission
    assert results["selective"].ict_ps[small] < 1.1 * results["never"].ict_ps[small]
    # and the policy assigned exactly one proxy
    assert sorted(results["selective"].proxy_assignments) == [large]
    benchmark.extra_info.update(
        ablation="admission",
        ict_ms={
            variant: {n: round(v / 1e9, 3) for n, v in r.ict_ps.items()}
            for variant, r in results.items()
        },
    )
