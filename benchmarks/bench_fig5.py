"""Figure 5: eBPF proxy overhead — lower bound (5a) and upper bound (5b).

Paper anchors: the eBPF bytecode alone costs a median of 0.42 us per
packet, with the two directions differing by their per-flow state
management (Fig. 5a); the tcpdump-measured wire-to-wire path has a median
of 325.92 us (Fig. 5b), showing the proxy logic is a negligible fraction
of the host stack.
"""

import pytest

from repro.hoststack import (
    ebpf_forward_path_pipeline,
    ebpf_reverse_path_pipeline,
    measure_pipeline,
    wire_to_wire_pipeline,
)

from benchmarks.conftest import run_once

PACKETS = 100_000


def test_fig5a_lower_bound_forward(benchmark):
    """Fig. 5a, sender->receiver path: median 0.42 us."""
    m = run_once(
        benchmark, lambda: measure_pipeline(ebpf_forward_path_pipeline(), PACKETS, seed=0)
    )
    assert m.percentile_us(50) == pytest.approx(0.42, rel=0.05)
    benchmark.extra_info.update(
        figure="5a", path="forward", paper_anchor_median_us=0.42,
        measured=m.table((25, 50, 75, 99)),
    )


def test_fig5a_lower_bound_reverse(benchmark):
    """Fig. 5a, receiver->sender path: lighter state, cheaper distribution."""
    fwd = measure_pipeline(ebpf_forward_path_pipeline(), PACKETS, seed=0)
    rev = run_once(
        benchmark, lambda: measure_pipeline(ebpf_reverse_path_pipeline(), PACKETS, seed=1)
    )
    assert rev.percentile_us(50) < fwd.percentile_us(50)
    benchmark.extra_info.update(
        figure="5a", path="reverse", measured=rev.table((25, 50, 75, 99))
    )


def test_fig5b_upper_bound(benchmark):
    """Fig. 5b: wire-to-wire median 325.92 us."""
    m = run_once(
        benchmark, lambda: measure_pipeline(wire_to_wire_pipeline(), PACKETS, seed=2)
    )
    assert m.percentile_us(50) == pytest.approx(325.92, rel=0.05)
    benchmark.extra_info.update(
        figure="5b", paper_anchor_median_us=325.92,
        measured=m.table((25, 50, 75, 99)),
    )


def test_fig5_proxy_logic_is_negligible(benchmark):
    """The paper's conclusion: hook low — the stack, not the proxy, costs."""

    def ratio():
        ebpf = measure_pipeline(ebpf_forward_path_pipeline(), PACKETS // 2, seed=3)
        upper = measure_pipeline(wire_to_wire_pipeline(), PACKETS // 2, seed=4)
        return ebpf.percentile_us(50) / upper.percentile_us(50)

    fraction = run_once(benchmark, ratio)
    assert fraction < 0.01
    benchmark.extra_info.update(figure="5", ebpf_fraction_of_wire_to_wire=fraction)
