"""Extension bench: incast under transient backbone failures.

The paper motivates inter-DC placement partly by reliability; here we
flap one backbone link mid-incast and check each scheme still completes —
and that the proxy advantage survives the churn.
"""

import pytest

from repro.sim.simulator import Simulator
from repro.topology.interdc import build_interdc
from repro.units import microseconds, milliseconds

from benchmarks.conftest import run_once


@pytest.mark.parametrize("scheme", ["baseline", "naive", "streamlined"])
def test_scheme_with_backbone_blip(benchmark, reduced_scenario, scheme):
    """One scheme with a mid-transfer backbone link flap."""
    from repro.proxy.placement import pick_proxy_host, pick_senders
    from repro.proxy.naive import NaiveProxy
    from repro.proxy.streamlined import StreamlinedProxy
    from repro.transport.connection import Connection

    def run():
        sim = Simulator(seed=0)
        trimming = scheme == "streamlined"
        topo = build_interdc(sim, reduced_scenario.interdc.with_trimming(trimming))
        net = topo.net
        receiver = topo.fabrics[1].hosts[0]
        senders = pick_senders(topo.fabrics[0], reduced_scenario.degree)
        sizes = [reduced_scenario.total_bytes // reduced_scenario.degree] * reduced_scenario.degree
        remaining = [len(sizes)]

        def done(_r):
            remaining[0] -= 1
            if remaining[0] == 0:
                sim.stop()

        if scheme == "baseline":
            for host, size in zip(senders, sizes):
                Connection(net, host, receiver, size, reduced_scenario.transport,
                           on_receiver_complete=done).start()
        elif scheme == "naive":
            proxy = NaiveProxy(net, pick_proxy_host(topo.fabrics[0], senders),
                               reduced_scenario.transport)
            for host, size in zip(senders, sizes):
                proxy.relay(host, receiver, size, on_receiver_complete=done).start()
        else:
            proxy_host = pick_proxy_host(topo.fabrics[0], senders)
            proxy = StreamlinedProxy(sim, proxy_host)
            for host, size in zip(senders, sizes):
                conn = Connection(net, host, receiver, size, reduced_scenario.transport,
                                  via=(proxy_host,), on_receiver_complete=done)
                proxy.attach(conn)
                conn.start()

        router = topo.backbone[0]
        spine_id = net.adjacency[router.id][0]
        net.fail_link(router.id, spine_id, at_ps=microseconds(500),
                      duration_ps=milliseconds(2))
        sim.run(until=reduced_scenario.horizon_ps)
        assert remaining[0] == 0, "incast must survive the blip"
        return sim.now

    ict = run_once(benchmark, run)
    benchmark.extra_info.update(
        extension="failures", scheme=scheme, ict_ms=ict / 1e9
    )
