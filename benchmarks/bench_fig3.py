"""Figure 3: ICT vs long-haul link latency (log-log in the paper).

Paper anchors: proxies win for link latency >= 100 us (about -12% there),
-75% at 1 ms, and the saving keeps growing with latency — region level to
WAN level.
"""

from dataclasses import replace

import pytest

from repro.experiments.runner import run_incast
from repro.units import microseconds, milliseconds

from benchmarks.conftest import run_once

DELAYS = (microseconds(10), microseconds(100), milliseconds(1), milliseconds(10))
SCHEMES = ("baseline", "naive", "streamlined")


@pytest.mark.parametrize("delay_ps", DELAYS, ids=lambda d: f"{d/1e6:g}us")
@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig3_point(benchmark, reduced_scenario, scheme, delay_ps):
    """One (scheme, latency) point of the latency sweep."""
    scenario = replace(
        reduced_scenario,
        scheme=scheme,
        interdc=reduced_scenario.interdc.with_backbone_delay(delay_ps),
    )
    result = run_once(benchmark, lambda: run_incast(scenario))
    assert result.completed
    benchmark.extra_info.update(
        figure="3", scheme=scheme, link_latency_us=delay_ps / 1e6,
        ict_ms=result.ict_ps / 1e9,
    )


def test_fig3_saving_grows_with_latency(benchmark, reduced_scenario):
    """The figure's shape: reductions increase monotonically with latency."""

    def sweep():
        reductions = []
        for delay in (microseconds(100), milliseconds(1), milliseconds(10)):
            cfg = reduced_scenario.interdc.with_backbone_delay(delay)
            base = run_incast(replace(reduced_scenario, scheme="baseline", interdc=cfg))
            naive = run_incast(replace(reduced_scenario, scheme="naive", interdc=cfg))
            reductions.append(1 - naive.ict_ps / base.ict_ps)
        return reductions

    reductions = run_once(benchmark, sweep)
    assert reductions == sorted(reductions)  # monotone growth
    assert reductions[-1] > 0.75  # WAN-ish latency: paper reports ~75%+
    benchmark.extra_info.update(
        figure="3",
        paper_anchor="-11.7% @100us, -75% @1ms, growing",
        measured_reductions=[round(r, 3) for r in reductions],
    )
