"""Microbenchmarks of the simulator substrate itself.

These track the kernel's raw throughput — event scheduling, queue
operations, packet forwarding across a small fabric — so performance
regressions in the hot path are visible independently of experiment
results.
"""

from repro.analysis.sanitizer import Sanitizer
from repro.config import QueueSpec, TransportConfig, small_interdc_config
from repro.net.packet import make_data
from repro.sim.rng import derive_stream
from repro.sim.simulator import Simulator
from repro.topology.interdc import build_interdc
from repro.transport.connection import Connection
from repro.units import megabytes, milliseconds


def test_scheduler_throughput(benchmark):
    """Schedule + execute 100k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 100_000


def test_queue_offer_pop_throughput(benchmark):
    """50k ECN-queue offer/pop pairs."""
    spec = QueueSpec(kind="ecn", capacity_bytes=10**9,
                     ecn_low_bytes=10**6, ecn_high_bytes=10**7)

    def run():
        q = spec.build(derive_stream(0, "bench:queue"))
        for i in range(50_000):
            q.offer(make_data(1, i, 0, 1, payload_bytes=1500))
        drained = 0
        while q.pop() is not None:
            drained += 1
        return drained

    assert benchmark(run) == 50_000


def test_end_to_end_transfer_throughput(benchmark):
    """A 10 MB flow across the small two-DC fabric, measured in wall time."""

    def run():
        sim = Simulator(seed=0)
        topo = build_interdc(sim, small_interdc_config())
        conn = Connection(
            topo.net,
            topo.hosts(0)[0],
            topo.hosts(1)[0],
            megabytes(10),
            TransportConfig(payload_bytes=4096),
        )
        conn.start()
        sim.run(until=milliseconds(10_000))
        assert conn.completed
        return sim.events_executed

    events = benchmark(run)
    assert events > 0


def _drive_reference_loop(sim, until=None, max_events=None):
    """The pre-telemetry ``Simulator.run`` loop, verbatim minus telemetry.

    Replicates every check the shipping loop performs (stop request,
    ``max_events``, horizon, backwards-clock sanitizer guard) but
    dispatches ``event.callback()`` directly — no instrumentation arm.
    Kept as the measurement baseline for
    :func:`test_disabled_instrumentation_overhead`: the instrumented
    simulator's *disabled* path must stay within noise of this.
    """
    scheduler = sim.scheduler
    executed = 0
    while True:
        if sim._stop_requested:
            break
        if max_events is not None and executed >= max_events:
            break
        next_time = scheduler.next_time()
        if next_time is None:
            break
        if until is not None and next_time > until:
            sim.now = until
            break
        event = scheduler.pop_next()
        assert event is not None
        if sim.sanitizer is not None and event.time < sim.now:
            raise AssertionError("clock would move backwards")
        sim.now = event.time
        event.cancelled = True
        event.callback()
        executed += 1
    sim.events_executed += executed
    return executed


def _chained_events(sim, total):
    """Seed ``total`` self-rescheduling tick events onto ``sim``."""
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < total:
            sim.schedule(1, tick)

    sim.schedule(1, tick)
    return count


def test_disabled_instrumentation_overhead():
    """``Simulator.run()`` with instrumentation *off* pays <= 2% vs the
    pre-telemetry reference loop.

    The disabled path hoists one ``enabled`` check per ``run()`` call and
    adds one ``is None`` branch per event; this guards against anyone
    moving real work onto it.  Min-of-N with interleaved reps so scheduler
    jitter and cache warmth hit both sides alike.
    """
    import time

    total = 200_000
    reps = 7
    ref_times, run_times = [], []
    for _ in range(reps):
        sim = Simulator()
        count = _chained_events(sim, total)
        t0 = time.perf_counter()
        _drive_reference_loop(sim)
        ref_times.append(time.perf_counter() - t0)
        assert count[0] == total

        sim = Simulator()
        count = _chained_events(sim, total)
        t0 = time.perf_counter()
        sim.run()
        run_times.append(time.perf_counter() - t0)
        assert count[0] == total

    best_ref, best_run = min(ref_times), min(run_times)
    # 2% relative budget plus a small absolute floor for timer noise.
    assert best_run <= best_ref * 1.02 + 0.005, (
        f"disabled instrumentation overhead too high: "
        f"run {best_run:.4f}s vs reference {best_ref:.4f}s"
    )


def test_end_to_end_transfer_sanitized(benchmark):
    """The same 10 MB flow with the invariant sanitizer installed.

    Compare against ``test_end_to_end_transfer_throughput`` to read the
    sanitizer's overhead; the hooks are one attribute read + ``None`` test
    when disabled, and per-packet counter updates when installed.
    """

    def run():
        sim = Simulator(seed=0)
        san = Sanitizer().install(sim)
        topo = build_interdc(sim, small_interdc_config())
        conn = Connection(
            topo.net,
            topo.hosts(0)[0],
            topo.hosts(1)[0],
            megabytes(10),
            TransportConfig(payload_bytes=4096),
        )
        conn.start()
        sim.run(until=milliseconds(10_000))
        assert conn.completed
        report = san.finish(topo.net)
        assert report.injected_packets > 0
        return sim.events_executed

    events = benchmark(run)
    assert events > 0
