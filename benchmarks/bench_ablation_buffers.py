"""Ablation: can buffers substitute for the proxy? (paper §1/§2 argument)

The paper dismisses deep/shared buffers as an answer to inter-DC incast:
absorbing a BDP-scale burst needs buffers "expensive to build" and the
long feedback loop remains.  We measure it: baseline ICT under static
per-port buffers vs Dynamic-Threshold shared buffers at several alpha
values, against the streamlined proxy on unchanged (static) buffers.
"""

from dataclasses import replace

import pytest

from repro.experiments.runner import run_incast

from benchmarks.conftest import run_once

ALPHAS = (0.5, 2.0, 8.0)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_shared_buffer_baseline(benchmark, reduced_scenario, alpha):
    """Direct senders with DT shared switch buffers."""
    scenario = replace(
        reduced_scenario, interdc=reduced_scenario.interdc.with_shared_buffers(alpha)
    )
    result = run_once(benchmark, lambda: run_incast(scenario))
    assert result.completed
    benchmark.extra_info.update(
        ablation="buffers", alpha=alpha, ict_ms=result.ict_ps / 1e9,
        drops=result.counters.packets_dropped,
        peak_queue_mb=result.counters.max_queue_bytes / 1e6,
    )


def test_buffer_sharing_does_not_substitute_for_the_proxy(benchmark, reduced_scenario):
    """No alpha setting approaches the proxy's ICT: the feedback loop, not
    buffer capacity, is the binding constraint."""

    def compare():
        static = run_incast(reduced_scenario).ict_ps
        shared = {
            alpha: run_incast(replace(
                reduced_scenario,
                interdc=reduced_scenario.interdc.with_shared_buffers(alpha),
            )).ict_ps
            for alpha in ALPHAS
        }
        proxy = run_incast(replace(reduced_scenario, scheme="streamlined")).ict_ps
        return static, shared, proxy

    static, shared, proxy = run_once(benchmark, compare)
    for alpha, ict in shared.items():
        assert proxy < 0.5 * ict, f"alpha={alpha} should not rival the proxy"
    benchmark.extra_info.update(
        ablation="buffers",
        static_ms=static / 1e9,
        shared_ms={str(a): round(v / 1e9, 3) for a, v in shared.items()},
        proxy_ms=proxy / 1e9,
    )
