"""Shared benchmark helpers.

Benchmarks regenerate the paper's figures at *reduced* scale (the small
two-DC fabric, tens of MB) so the whole suite runs in minutes; the
``--full`` path of ``python -m repro.experiments.figures`` reproduces the
paper-scale numbers recorded in EXPERIMENTS.md.  Every benchmark stores
its measured results in ``benchmark.extra_info`` so the JSON output
carries the reproduced figure data alongside the timings.
"""

from __future__ import annotations

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.runner import IncastScenario
from repro.units import megabytes


@pytest.fixture()
def reduced_scenario() -> IncastScenario:
    """The shared reduced-scale scenario benchmarks derive from."""
    return IncastScenario(
        degree=4,
        total_bytes=megabytes(24),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
