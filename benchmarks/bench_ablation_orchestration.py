"""Ablation: proxy selection strategies across concurrent incasts (§5, FW#3)."""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.orchestration import run_concurrent_incasts
from repro.units import megabytes
from repro.workloads import uniform_incast

from benchmarks.conftest import run_once

STRATEGIES = ("none", "shared", "round-robin", "central", "decentralized")


def make_jobs():
    return [
        uniform_incast(f"j{i}", degree=2, total_bytes=megabytes(12),
                       receiver_index=i, sender_offset=i * 2)
        for i in range(3)
    ]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy(benchmark, strategy):
    """Three concurrent incasts under one selection strategy."""
    scheme = "baseline" if strategy == "none" else "streamlined"
    result = run_once(
        benchmark,
        lambda: run_concurrent_incasts(
            make_jobs(), scheme=scheme, strategy=strategy,
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        ),
    )
    assert result.completed
    benchmark.extra_info.update(
        ablation="orchestration", strategy=strategy,
        mean_ict_ms=result.mean_ict_ps / 1e9,
        makespan_ms=result.makespan_ps / 1e9,
        probes=result.probes, fallbacks=result.fallbacks,
    )


def test_contention_ordering(benchmark):
    """Per-incast proxies beat the shared proxy, which beats no proxy."""

    def compare():
        cfg = small_interdc_config()
        transport = TransportConfig(payload_bytes=4096)
        out = {}
        for scheme, strategy in (
            ("baseline", "none"), ("streamlined", "shared"), ("streamlined", "central")
        ):
            out[strategy] = run_concurrent_incasts(
                make_jobs(), scheme=scheme, strategy=strategy,
                interdc=cfg, transport=transport,
            ).mean_ict_ps
        return out

    icts = run_once(benchmark, compare)
    assert icts["central"] < icts["shared"] < icts["none"]
    benchmark.extra_info.update(
        ablation="orchestration",
        mean_ict_ms={k: round(v / 1e9, 3) for k, v in icts.items()},
    )
