"""Serial vs parallel sweep throughput (the execution-engine benchmark).

Runs the same 4-point, 4-rep degree sweep twice — once serially, once
fanned over a 4-worker process pool — verifies the two sweeps produce
**byte-identical summaries** (`sweep_digest`), and reports wall-clock,
throughput, and speedup.  On a machine with >= 4 usable cores the pool
should finish the sweep at least ~2x faster than the serial pass; on a
single-core runner the numbers are still reported but no speedup is
asserted (the pool can't beat physics).

Run standalone for the human-readable report::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py

or through pytest-benchmark like the other benches::

    pytest benchmarks/bench_parallel_scaling.py --benchmark-only
"""

from __future__ import annotations

import os
import time

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.runner import IncastScenario
from repro.experiments.sweeps import SweepPoint, degree_sweep, sweep_digest
from repro.units import megabytes

DEGREES = (2, 3, 4, 5)  # 4 sweep points
REPS = 4
SCHEMES = ("baseline", "streamlined")
PARALLEL_WORKERS = 4


def _scenario() -> IncastScenario:
    return IncastScenario(
        degree=4,
        total_bytes=megabytes(8),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )


def _sweep(workers: int) -> list[SweepPoint]:
    return degree_sweep(
        _scenario(), DEGREES, SCHEMES, reps=REPS, workers=workers, cache=None
    )


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_scaling() -> dict:
    """Run both passes and return the comparison record."""
    runs = len(DEGREES) * REPS * len(SCHEMES)

    start = time.perf_counter()
    serial = _sweep(workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _sweep(workers=PARALLEL_WORKERS)
    parallel_s = time.perf_counter() - start

    return {
        "runs": runs,
        "cpus": _usable_cpus(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "serial_runs_per_s": runs / serial_s,
        "parallel_runs_per_s": runs / parallel_s,
        "speedup": serial_s / parallel_s,
        "serial_digest": sweep_digest(serial),
        "parallel_digest": sweep_digest(parallel),
        "identical": sweep_digest(serial) == sweep_digest(parallel),
    }


def test_parallel_scaling(benchmark):
    """Benchmark the comparison; summaries must match bit-for-bit."""
    record = benchmark.pedantic(measure_scaling, rounds=1, iterations=1)
    benchmark.extra_info.update(record)
    assert record["identical"], "parallel sweep diverged from serial summaries"
    if record["cpus"] >= PARALLEL_WORKERS:
        assert record["speedup"] >= 2.0, (
            f"expected >= 2x speedup with {PARALLEL_WORKERS} workers on "
            f"{record['cpus']} CPUs, got {record['speedup']:.2f}x"
        )


def main() -> int:
    record = measure_scaling()
    print(f"sweep: {len(DEGREES)} points x {REPS} reps x {len(SCHEMES)} schemes "
          f"= {record['runs']} runs ({_usable_cpus()} usable CPUs)")
    print(f"{'mode':<10} {'wall':>9} {'runs/s':>8}")
    print(f"{'serial':<10} {record['serial_seconds']:>8.2f}s "
          f"{record['serial_runs_per_s']:>8.2f}")
    print(f"{'workers=4':<10} {record['parallel_seconds']:>8.2f}s "
          f"{record['parallel_runs_per_s']:>8.2f}")
    print(f"speedup: {record['speedup']:.2f}x")
    print(f"summaries byte-identical: {record['identical']} "
          f"({record['serial_digest'][:16]})")
    if not record["identical"]:
        print("FAIL: parallel sweep diverged from serial summaries")
        return 1
    if record["cpus"] >= PARALLEL_WORKERS and record["speedup"] < 2.0:
        print(f"FAIL: expected >= 2x speedup on {record['cpus']} CPUs")
        return 1
    if record["cpus"] < PARALLEL_WORKERS:
        print(f"note: only {record['cpus']} usable CPU(s); "
              "speedup threshold not enforced")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
