"""Ablation: streamlined proxying without switch trimming (paper §5, FW#1).

Trimming needs router support; the gap-detector proxy infers losses from
arrival sequences instead.  This bench quantifies what that future-work
design costs relative to trimming-assisted streamlined and how much it
still beats the baseline, plus the detector's sensitivity to its memory
bound (evict-as-lost vs evict-as-forget).
"""

from dataclasses import replace

import pytest

from repro.detection.lossdetector import DetectorConfig
from repro.experiments.runner import run_incast
from repro.units import microseconds

from benchmarks.conftest import run_once


@pytest.mark.parametrize("scheme", ["baseline", "streamlined", "trimless"])
def test_trimless_vs_trimming(benchmark, reduced_scenario, scheme):
    """One scheme of the trimless comparison."""
    scenario = replace(reduced_scenario, scheme=scheme)
    result = run_once(benchmark, lambda: run_incast(scenario))
    assert result.completed
    benchmark.extra_info.update(
        ablation="trimless", scheme=scheme, ict_ms=result.ict_ps / 1e9,
        nacks=result.nacks_received, timeouts=result.timeouts,
    )


def test_trimless_lands_between(benchmark, reduced_scenario):
    """Detector-driven NACKs beat the baseline but cannot see tail losses
    the way trimming does (gaps need later arrivals), so trimless sits
    between the two."""

    def compare():
        return {
            scheme: run_incast(replace(reduced_scenario, scheme=scheme)).ict_ps
            for scheme in ("baseline", "streamlined", "trimless")
        }

    icts = run_once(benchmark, compare)
    assert icts["streamlined"] < icts["trimless"] < icts["baseline"]
    benchmark.extra_info.update(
        ablation="trimless",
        ict_ms={k: round(v / 1e9, 3) for k, v in icts.items()},
    )


@pytest.mark.parametrize("policy", ["lost", "forget"])
def test_detector_memory_policy(benchmark, reduced_scenario, policy):
    """FW#1's FP-vs-FN knob under a tight (64-gap) memory bound."""
    detector = DetectorConfig(
        max_tracked_gaps=64,
        packet_threshold=8,
        reorder_window_ps=microseconds(20),
        evict_policy=policy,
    )
    scenario = replace(reduced_scenario, scheme="trimless", detector=detector)
    result = run_once(benchmark, lambda: run_incast(scenario))
    assert result.completed
    benchmark.extra_info.update(
        ablation="detector-memory", policy=policy,
        ict_ms=result.ict_ps / 1e9, timeouts=result.timeouts,
    )
