"""Ablation: congestion-control sensitivity of the headline comparison.

The paper's senders are DCTCP-like; FW#1 notes the design interacts with
the congestion control in use.  We rerun the headline comparison with the
plain Reno-AIMD controller to check the proxy benefit is not an artifact
of DCTCP's ECN-proportional cuts.
"""

from dataclasses import replace

import pytest

from repro.experiments.runner import run_incast

from benchmarks.conftest import run_once

CCS = ("dctcp", "aimd")
SCHEMES = ("baseline", "streamlined")


@pytest.mark.parametrize("cc", CCS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_cc_variant(benchmark, reduced_scenario, scheme, cc):
    """One (scheme, congestion control) cell."""
    scenario = replace(
        reduced_scenario,
        scheme=scheme,
        transport=replace(reduced_scenario.transport, cc=cc),
    )
    result = run_once(benchmark, lambda: run_incast(scenario))
    assert result.completed
    benchmark.extra_info.update(
        ablation="cc", cc=cc, scheme=scheme, ict_ms=result.ict_ps / 1e9
    )


def test_proxy_wins_under_both_ccs(benchmark, reduced_scenario):
    """The headline holds for DCTCP-like *and* Reno-AIMD senders."""

    def compare():
        out = {}
        for cc in CCS:
            transport = replace(reduced_scenario.transport, cc=cc)
            base = run_incast(replace(reduced_scenario, scheme="baseline",
                                      transport=transport))
            prox = run_incast(replace(reduced_scenario, scheme="streamlined",
                                      transport=transport))
            out[cc] = (base.ict_ps, prox.ict_ps)
        return out

    results = run_once(benchmark, compare)
    for cc, (base, prox) in results.items():
        assert prox < 0.6 * base, f"proxy should win under {cc}"
    benchmark.extra_info.update(
        ablation="cc",
        reductions={cc: round(1 - p / b, 3) for cc, (b, p) in results.items()},
    )
