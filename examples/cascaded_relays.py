#!/usr/bin/env python3
"""Cascaded relays across a three-datacenter chain (extension of the paper).

The paper places one proxy in the sending datacenter of a two-DC path.
What about metro DC -> regional hub -> remote region?  This example runs
an incast from DC0 to DC2 (segments of 1 ms and 10 ms) three ways —
direct, edge relay only (the paper's design), and a cascade with a relay
at every datacenter boundary — on a healthy chain and with a transient
link blip on the near segment.

Run:  python examples/cascaded_relays.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import FabricConfig, QueueSpec, TransportConfig
from repro.experiments.cascade import CascadeScenario, run_cascade
from repro.topology.multidc import MultiDcConfig
from repro.units import format_duration, kilobytes, megabytes, milliseconds


def build_scenario() -> CascadeScenario:
    fabric = FabricConfig(
        spines=2, leaves=2, servers_per_leaf=4,
        switch_queue=QueueSpec(kind="ecn", capacity_bytes=megabytes(4),
                               ecn_low_bytes=kilobytes(33.2),
                               ecn_high_bytes=kilobytes(136.95)),
    )
    chain = MultiDcConfig(
        fabric=fabric,
        segment_delays_ps=(milliseconds(1), milliseconds(10)),
        backbone_per_spine=2,
        backbone_queue=QueueSpec(kind="ecn", capacity_bytes=megabytes(12),
                                 ecn_low_bytes=megabytes(2.5),
                                 ecn_high_bytes=megabytes(10)),
    )
    return CascadeScenario(
        degree=4, total_bytes=megabytes(16), chain=chain,
        transport=TransportConfig(payload_bytes=4096),
    )


def main() -> None:
    base = build_scenario()
    print("chain: DC0 -(1 ms)- DC1 -(10 ms)- DC2; "
          "4 senders in DC0, receiver in DC2, 16 MB\n")

    print(f"{'scheme':<10} {'healthy chain':>14} {'blip on near segment':>22}")
    blip = (0, milliseconds(1), milliseconds(3))
    for scheme in ("baseline", "edge", "cascade"):
        healthy = run_cascade(replace(base, scheme=scheme))
        blipped = run_cascade(replace(base, scheme=scheme, blip=blip))
        print(f"{scheme:<10} {format_duration(healthy.ict_ps):>14} "
              f"{format_duration(blipped.ict_ps):>22}")

    print("\nOn a healthy chain the edge relay already wins: incast convergence")
    print("is a first-segment problem.  When the near segment blips, the")
    print("cascade repairs those losses from the DC0 relay over a 2 ms loop;")
    print("the edge-only design must repair them across the whole 22 ms path,")
    print("timeout ladder and all.")


if __name__ == "__main__":
    main()
