#!/usr/bin/env python3
"""Erasure-coded fragment reconstruction across datacenters (paper §2).

A storage front-end in datacenter 1 must rebuild a lost fragment by reading
the six surviving data fragments of the stripe — which live on servers in
datacenter 0.  That read *is* an incast of degree six.  We reconstruct with
and without a proxy, across three long-haul latencies, showing the paper's
Figure-3 trend on a storage workload.

Run:  python examples/storage_reconstruction.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.runner import IncastScenario, run_incast
from repro.units import format_duration, megabytes, microseconds, milliseconds
from repro.workloads import ReconstructionConfig, reconstruction_jobs


def main() -> None:
    stripe = ReconstructionConfig(
        data_fragments=6,
        fragment_bytes=megabytes(4),
        servers=8,
        seed=1,
    )
    job = reconstruction_jobs(stripe)[0]
    print(f"reconstruction read: {job.degree} fragments x "
          f"{stripe.fragment_bytes / 1e6:.0f} MB = {job.total_bytes / 1e6:.0f} MB\n")

    transport = TransportConfig(payload_bytes=4096)
    base = IncastScenario(
        degree=job.degree,
        total_bytes=job.total_bytes,
        interdc=small_interdc_config(),
        transport=transport,
    )

    print(f"{'long-haul link':<16} {'baseline':>12} {'streamlined':>12} {'reduction':>10}")
    for delay in (microseconds(100), milliseconds(1), milliseconds(10)):
        interdc = base.interdc.with_backbone_delay(delay)
        baseline = run_incast(replace(base, scheme="baseline", interdc=interdc))
        proxied = run_incast(replace(base, scheme="streamlined", interdc=interdc))
        reduction = (baseline.ict_ps - proxied.ict_ps) / baseline.ict_ps
        print(f"{format_duration(delay):<16} {format_duration(baseline.ict_ps):>12} "
              f"{format_duration(proxied.ict_ps):>12} {reduction * 100:>9.1f}%")

    print("\nReconstruction latency is user-visible read latency; the longer")
    print("the long-haul links, the more the sending-side proxy saves.")


if __name__ == "__main__":
    main()
