#!/usr/bin/env python3
"""Goodput trajectories: *why* the proxy wins (paper §3, Insight #2).

Plots (as text) the receiver-side goodput of the same incast under the
three schemes.  The baseline fills the pipe for one burst, collapses, and
spends dozens of milliseconds trickling; both proxy schemes lock onto the
bottleneck rate within the first propagation delay and stay there.

Run:  python examples/convergence_trajectory.py
"""

from __future__ import annotations

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.convergence import compare_convergence
from repro.experiments.runner import IncastScenario
from repro.units import format_duration, megabytes

BAR_WIDTH = 50


def render_trajectory(result, max_rows: int = 24) -> str:
    """One row per sample window: time, utilization bar, percentage."""
    series = result.utilization_series()
    if not series:
        return "  (no samples)"
    stride = max(1, len(series) // max_rows)
    lines = []
    for time, fraction in series[::stride]:
        filled = min(BAR_WIDTH, round(fraction * BAR_WIDTH))
        bar = "#" * filled + "." * (BAR_WIDTH - filled)
        lines.append(f"  {format_duration(time):>10} |{bar}| {fraction * 100:5.1f}%")
    return "\n".join(lines)


def main() -> None:
    scenario = IncastScenario(
        degree=4,
        total_bytes=megabytes(24),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    results = compare_convergence(scenario)

    for scheme, result in results.items():
        converged = (
            format_duration(result.convergence_time_ps)
            if result.convergence_time_ps is not None
            else "never (target 80% not sustained)"
        )
        print(f"\n=== {scheme} ===")
        print(f"ICT {format_duration(result.ict_ps)}, "
              f"mean utilization {result.mean_utilization * 100:.1f}%, "
              f"converged: {converged}")
        print(render_trajectory(result))

    print("\nThe bars are receiver goodput as a fraction of the 100G bottleneck.")
    print("Shortening the feedback loop is what keeps the proxy runs pinned")
    print("at the top after the very first round trip.")


if __name__ == "__main__":
    main()
