#!/usr/bin/env python3
"""Mixture-of-Experts dispatch across datacenters (paper §2's ML motivation).

Eight workers in datacenter 0 route token batches to experts sharded into
datacenter 1 (Zipf-skewed gating, as real MoE layers exhibit).  Each expert
becomes the receiver of a concurrent incast over the long-haul links.  We
run the dispatch phase three ways — direct, through a single shared proxy,
and with a per-incast proxy chosen by the central orchestrator — and report
per-expert and aggregate completion.

Run:  python examples/moe_training.py
"""

from __future__ import annotations

from repro.config import TransportConfig, small_interdc_config
from repro.orchestration import run_concurrent_incasts
from repro.units import format_duration, megabytes
from repro.workloads import MoEConfig, moe_dispatch_jobs


def main() -> None:
    moe = MoEConfig(
        senders=4,
        experts=3,
        tokens_per_sender=1500,
        token_bytes=4096,   # ~6 MB of activations per worker per step
        zipf_skew=1.0,
        seed=7,
    )
    jobs = moe_dispatch_jobs(moe)
    total = sum(job.total_bytes for job in jobs)
    print(f"MoE dispatch: {moe.senders} workers -> {moe.experts} remote experts, "
          f"{total / 1e6:.1f} MB of token traffic in {len(jobs)} concurrent incasts")
    for job in jobs:
        print(f"  {job.name}: degree {job.degree}, {job.total_bytes / 1e6:.1f} MB")

    transport = TransportConfig(payload_bytes=4096)
    interdc = small_interdc_config()

    print(f"\n{'strategy':<22} {'mean ICT':>12} {'makespan':>12} {'probes':>7}")
    for scheme, strategy, label in (
        ("baseline", "none", "direct (no proxy)"),
        ("streamlined", "shared", "one shared proxy"),
        ("streamlined", "central", "orchestrated proxies"),
    ):
        result = run_concurrent_incasts(
            jobs, scheme=scheme, strategy=strategy,
            interdc=interdc, transport=transport,
        )
        assert result.completed, "dispatch did not finish within the horizon"
        print(f"{label:<22} {format_duration(round(result.mean_ict_ps)):>12} "
              f"{format_duration(result.makespan_ps):>12} {result.probes:>7}")

    print("\nEvery expert's incast benefits from a proxy; giving each incast")
    print("its *own* proxy (FW#3 orchestration) removes the relay contention")
    print("a single shared proxy would reintroduce.")


if __name__ == "__main__":
    main()
