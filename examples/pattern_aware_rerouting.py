#!/usr/bin/env python3
"""Pattern-aware incast rerouting (paper §6, second research direction).

ML training traffic is periodic: synchronization bursts recur every step.
A cloud operator that *predicts* the next burst can stage a proxy before
it starts; one that merely *detects* it reacts after the burst has already
crossed the long-haul links.  This example:

1. builds a synthetic per-step traffic series for an MoE job,
2. estimates its period by autocorrelation and predicts the next burst,
3. shows the reactive detector firing from per-destination flow counters,
4. quantifies the payoff: the predicted burst runs proxied, the
   unpredicted one runs direct.

Run:  python examples/pattern_aware_rerouting.py
"""

from __future__ import annotations

import numpy as np

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.runner import IncastScenario, run_incast
from repro.patterns import DetectorSettings, OnlineIncastDetector, PeriodicIncastPredictor
from repro.units import format_duration, megabytes, microseconds, milliseconds
from dataclasses import replace


def synthesize_training_series(period: int, steps: int, seed: int = 0) -> np.ndarray:
    """Per-bin egress bytes of a training job: quiet compute, sharp bursts."""
    rng = np.random.default_rng(seed)
    series = rng.normal(2.0, 0.4, period * steps).clip(min=0)  # background chatter
    series[::period] += 60.0 + rng.normal(0, 4.0, steps)  # sync bursts
    return series


def main() -> None:
    # -- 1+2: predict the next synchronization burst -------------------------
    period_bins, steps = 50, 12
    series = synthesize_training_series(period_bins, steps)
    estimate = PeriodicIncastPredictor().estimate(series)
    print("predictor:")
    print(f"  true period      : {period_bins} bins")
    print(f"  estimated period : {estimate.period_samples} bins "
          f"(confidence {estimate.confidence:.2f})")
    print(f"  next burst at bin: {estimate.next_burst_index} "
          f"(series ends at {len(series) - 1})")
    assert estimate.is_periodic

    # -- 3: the reactive detector fires only once traffic converges ----------
    detector = OnlineIncastDetector(DetectorSettings(
        window_ps=milliseconds(1), min_sources=3, min_bytes=megabytes(1)))
    t0 = microseconds(10)
    event = None
    for src in range(4):
        event = detector.observe(t0 + src * 100, src=src, dst=0,
                                 nbytes=megabytes(2)) or event
    print("\nreactive detector:")
    print(f"  fired: {event is not None}; sources seen: {event.sources}, "
          f"window bytes: {event.window_bytes / 1e6:.0f} MB")
    print(f"  detection lag vs burst start: "
          f"{format_duration(event.time - t0)} (the burst is already in flight)")

    # -- 4: the payoff of acting before the burst ----------------------------
    scenario = IncastScenario(
        degree=4,
        total_bytes=megabytes(24),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    direct = run_incast(scenario)
    proxied = run_incast(replace(scenario, scheme="streamlined"))
    print("\nburst completion:")
    print(f"  unpredicted (direct) : {format_duration(direct.ict_ps)}")
    print(f"  predicted (proxied)  : {format_duration(proxied.ict_ps)} "
          f"(-{(direct.ict_ps - proxied.ict_ps) / direct.ict_ps * 100:.1f}%)")

    # -- 5: the closed loop: learn the rhythm, pre-stage the proxy -----------
    from repro.patterns import ControllerConfig, PatternAwareController, run_pattern_aware
    from repro.workloads import periodic_incasts

    jobs = periodic_incasts(bursts=10, period_ps=milliseconds(60), degree=4,
                            total_bytes=megabytes(16))
    controller = PatternAwareController(
        ControllerConfig(bin_ps=milliseconds(10), min_bursts=4))
    loop = run_pattern_aware(jobs, small_interdc_config(),
                             TransportConfig(payload_bytes=4096),
                             controller=controller)
    print("\nclosed loop over a 10-burst training run (period 60 ms):")
    print(f"  learned period        : {format_duration(loop.learned_period_ps)}")
    print(f"  bursts spent learning : {loop.learning_bursts} "
          f"(ran direct, mean ICT "
          f"{format_duration(round(loop.mean_ict_ps(loop.direct_jobs)))})")
    print(f"  predicted bursts      : {len(loop.proxied_jobs)} "
          f"(pre-staged proxy, mean ICT "
          f"{format_duration(round(loop.mean_ict_ps(loop.proxied_jobs)))})")
    print("\nPrediction buys the operator the whole proxy benefit; detection")
    print("alone arrives after the first — most damaging — RTT of the burst.")


if __name__ == "__main__":
    main()
