#!/usr/bin/env python3
"""Proxy selection across concurrent incasts (paper §5, Future Work #3).

Three geo-replication write epochs (quorum flushes) hit datacenter 1
simultaneously.  Every incast wants a proxy; the question is *which* server
each one should use.  We compare no proxy, one shared proxy, the central
least-loaded orchestrator, load-blind round-robin, and decentralized
random probing — including the probing overhead the paper warns about.

Run:  python examples/proxy_orchestration.py
"""

from __future__ import annotations

from repro.config import TransportConfig, small_interdc_config
from repro.orchestration import run_concurrent_incasts
from repro.units import format_duration, megabytes
from repro.workloads import uniform_incast


def main() -> None:
    jobs = [
        uniform_incast(f"quorum{i}", degree=2, total_bytes=megabytes(12),
                       receiver_index=i, sender_offset=i * 2)
        for i in range(3)
    ]
    print(f"{len(jobs)} concurrent incasts, "
          f"{sum(j.total_bytes for j in jobs) / 1e6:.0f} MB total\n")

    transport = TransportConfig(payload_bytes=4096)
    interdc = small_interdc_config()

    print(f"{'strategy':<16} {'mean ICT':>12} {'makespan':>12} "
          f"{'probes':>7} {'fallbacks':>10} {'proxies used':>13}")
    for scheme, strategy in (
        ("baseline", "none"),
        ("streamlined", "shared"),
        ("streamlined", "round-robin"),
        ("streamlined", "central"),
        ("streamlined", "decentralized"),
    ):
        result = run_concurrent_incasts(
            jobs, scheme=scheme, strategy=strategy,
            interdc=interdc, transport=transport,
        )
        assert result.completed
        used = len(set(result.proxy_assignments.values()))
        print(f"{strategy:<16} {format_duration(round(result.mean_ict_ps)):>12} "
              f"{format_duration(result.makespan_ps):>12} {result.probes:>7} "
              f"{result.fallbacks:>10} {used:>13}")

    print("\nShared-proxy runs re-serialize all incasts through one 100G NIC;")
    print("any strategy that spreads incasts across proxies recovers the full")
    print("per-incast benefit.  Decentralized probing matches the central")
    print("orchestrator here but pays per-incast probe round-trips.")


if __name__ == "__main__":
    main()
