#!/usr/bin/env python3
"""Tuning trimming-free loss detection (paper §5, Future Work #1).

The paper's open questions: within eBPF-like memory limits, which packets
should the proxy track, how much error can it tolerate, and are false
positives or false negatives more fatal?  This example sweeps the gap
detector's three knobs against synthetic streams with ground truth —
varying reordering depth (packet spraying), loss rate, and the memory
bound — and prints precision / recall / detection latency for each.

Run:  python examples/detector_tuning.py
"""

from __future__ import annotations

from repro.detection import DetectorConfig, evaluate_detector, synthesize_stream
from repro.units import format_duration, microseconds


def score(cfg: DetectorConfig, *, loss: float, reorder: float, depth: int, seed: int = 0):
    events, lost = synthesize_stream(
        5000, loss_rate=loss, reorder_rate=reorder, reorder_depth=depth, seed=seed
    )
    return evaluate_detector(events, lost, cfg)


def row(label: str, result) -> str:
    return (f"  {label:<34} precision={result.precision:5.3f} "
            f"recall={result.recall:5.3f} "
            f"latency={format_duration(round(result.mean_latency_ps)):>10}")


def main() -> None:
    print("1) Reordering tolerance (loss 3%, spraying-like displacement):")
    for window_us, threshold in ((1, 2), (20, 8), (100, 32)):
        cfg = DetectorConfig(packet_threshold=threshold,
                             reorder_window_ps=microseconds(window_us))
        result = score(cfg, loss=0.03, reorder=0.4, depth=16)
        print(row(f"window={window_us}us threshold={threshold}", result))
    print("   -> too eager misreads reordering as loss (precision drops);")
    print("      too patient defers every repair (latency grows).")

    print("\n2) Memory bound under heavy loss (20% burst loss):")
    for gaps, policy in ((1024, "lost"), (16, "lost"), (16, "forget")):
        cfg = DetectorConfig(max_tracked_gaps=gaps, packet_threshold=8,
                             reorder_window_ps=microseconds(20), evict_policy=policy)
        result = score(cfg, loss=0.2, reorder=0.1, depth=4)
        print(row(f"gaps={gaps} evict={policy}", result))
    print("   -> a tight map with evict-as-lost keeps recall (extra NACKs cost")
    print("      spurious retransmissions); evict-as-forget silently loses")
    print("      repairs to the sender's RTO — FNs are the fatal direction")
    print("      for incast, matching the paper's intuition.")

    print("\n3) Clean in-order streams are easy at any setting:")
    cfg = DetectorConfig(packet_threshold=4, reorder_window_ps=microseconds(10))
    result = score(cfg, loss=0.05, reorder=0.0, depth=0)
    print(row("no reordering", result))


if __name__ == "__main__":
    main()
