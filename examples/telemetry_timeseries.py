#!/usr/bin/env python3
"""Watch an incast from the inside: sampled time-series + a run profile.

Runs the same incast under the baseline and the streamlined proxy with
``RunOptions(telemetry=True)`` and renders what the recorder saw: the
network-wide queue backlog trajectory (the baseline's deep standing queue
vs the proxy's shallow one), the first sender's congestion window, and
the profiler's verdict on where the simulation's wall-clock went.

Run:  python examples/telemetry_timeseries.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.runner import IncastScenario, run_incast
from repro.telemetry import RunOptions
from repro.units import format_duration, megabytes, microseconds

BAR_WIDTH = 48
MAX_ROWS = 18


def render_series(series, scale: float, unit: str) -> str:
    """One row per (strided) sample: time, bar, scaled value."""
    peak = series.max_value() or 1.0
    stride = max(1, len(series.times) // MAX_ROWS)
    lines = []
    for t, v in list(zip(series.times, series.values))[::stride]:
        filled = min(BAR_WIDTH, round(v / peak * BAR_WIDTH))
        bar = "#" * filled + "." * (BAR_WIDTH - filled)
        lines.append(f"  {format_duration(t):>10} |{bar}| {v / scale:9.1f} {unit}")
    return "\n".join(lines)


def main() -> None:
    base = IncastScenario(
        degree=4,
        total_bytes=megabytes(24),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    options = RunOptions(telemetry=True, sample_interval_ps=microseconds(20))

    for scheme in ("baseline", "streamlined"):
        result = run_incast(replace(base, scheme=scheme), options=options)
        snap = result.telemetry
        print(f"\n=== {scheme}: ICT {result.ict_ms:.2f} ms ===")
        print("network queue backlog:")
        print(render_series(snap.get("net.queue_bytes"), 1024.0, "KiB"))
        cwnd = next(s for name, s in sorted(snap.series.items())
                    if name.startswith("sender.") and name.endswith(".cwnd"))
        print("first sender cwnd:")
        print(render_series(cwnd, 1.0, "pkts"))
        profile = snap.profile
        phases = ", ".join(
            f"{name} {secs * 1e3:.1f}ms"
            for name, secs in profile.phase_seconds.items()
        )
        print(f"profile: {profile.events_executed} events "
              f"({profile.events_per_second:,.0f}/s), phases: {phases}")
        for name, secs in profile.hottest_handlers(3):
            print(f"  hot handler: {name:<40} {secs * 1e3:7.1f} ms")


if __name__ == "__main__":
    main()
