#!/usr/bin/env python3
"""The incast programming abstraction end to end (paper §6, first direction).

A developer declares the application's components and its incast-like
communication — nothing about datacenters or proxies.  At deployment time
the provider places components (here: workers land in DC0, the parameter
service in DC1), discovers which declared incasts became inter-datacenter,
and transparently rewrites them to run proxy-assisted.

Run:  python examples/annotated_deployment.py
"""

from __future__ import annotations

from repro.abstraction import AppGraph, DeploymentPlanner
from repro.config import TransportConfig, small_interdc_config
from repro.units import format_duration, megabytes


def declare_application() -> AppGraph:
    """What the developer writes: structure, not placement."""
    app = AppGraph("param-sync")
    app.add_component("workers", replicas=4)
    app.add_component("evaluator", replicas=2)
    app.add_component("param-server", replicas=1)
    app.declare_incast(
        "gradient-push",
        senders=["workers"],
        receiver="param-server",
        bytes_per_burst=megabytes(24),
        periodic=True,
    )
    app.declare_incast(
        "eval-report",
        senders=["evaluator"],
        receiver="param-server",
        bytes_per_burst=megabytes(1),
    )
    return app


def main() -> None:
    app = declare_application()
    print(f"app {app.name!r}: {len(app.components)} components, "
          f"{len(app.incasts)} declared incasts")

    # What the provider decides: the placement.
    placement = {"workers": 0, "evaluator": 0, "param-server": 1}
    planner = DeploymentPlanner(app, placement)
    plan = planner.plan()

    print("\ndeployment analysis:")
    for planned in plan.planned:
        verdict = "inter-DC -> proxy-assisted" if planned.crosses_datacenters else "intra-DC -> untouched"
        print(f"  {planned.decl.name:<14} {verdict}")

    transport = TransportConfig(payload_bytes=4096)
    interdc = small_interdc_config()
    direct = planner.execute(plan, proxied=False, interdc=interdc, transport=transport)
    rewritten = planner.execute(plan, proxied=True, interdc=interdc, transport=transport)

    print("\ngradient-push completion:")
    print(f"  as deployed (direct)     : {format_duration(round(direct.mean_ict_ps))}")
    print(f"  provider rewrite (proxy) : {format_duration(round(rewritten.mean_ict_ps))} "
          f"(-{(direct.mean_ict_ps - rewritten.mean_ict_ps) / direct.mean_ict_ps * 100:.1f}%)")
    print("\nThe application never changed: the abstraction carried enough")
    print("information for the provider to convert the inter-DC incast into")
    print("a proxy-assisted one at deployment time.")


if __name__ == "__main__":
    main()
