#!/usr/bin/env python3
"""Quickstart: one inter-datacenter incast under every scheme.

Reproduces the paper's headline in one page: four senders in datacenter 0
blast 40 MB at a receiver in datacenter 1, with a 1 ms long-haul link.
Direct transmission (baseline) suffers the long feedback loop; routing
through a proxy in the sending datacenter — the *longer* path — finishes
several times sooner.

Run:  python examples/quickstart.py [--paper-scale]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro import IncastScenario, paper_interdc_config, run_incast, small_interdc_config
from repro.config import TransportConfig
from repro.units import format_duration, megabytes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the full §4.1 topology and a 100 MB incast (slower)",
    )
    args = parser.parse_args()

    if args.paper_scale:
        interdc = paper_interdc_config()
        total = megabytes(100)
        payload = 8192
    else:
        interdc = small_interdc_config()
        total = megabytes(40)
        payload = 4096

    scenario = IncastScenario(
        degree=4,
        total_bytes=total,
        interdc=interdc,
        transport=TransportConfig(payload_bytes=payload),
    )

    print(f"incast: {scenario.degree} senders, {total / 1e6:.0f} MB total, "
          f"{interdc.backbone_delay_ps / 1e9:.1f} ms long-haul links\n")
    print(f"{'scheme':<14} {'ICT':>12} {'vs baseline':>12} "
          f"{'drops':>8} {'trims':>8} {'timeouts':>9}")

    baseline_ict = None
    for scheme in ("baseline", "naive", "streamlined", "trimless"):
        result = run_incast(replace(scenario, scheme=scheme))
        if scheme == "baseline":
            baseline_ict = result.ict_ps
            delta = ""
        else:
            reduction = (baseline_ict - result.ict_ps) / baseline_ict
            delta = f"-{reduction * 100:.1f}%"
        print(f"{scheme:<14} {format_duration(result.ict_ps):>12} {delta:>12} "
              f"{result.counters.packets_dropped:>8} "
              f"{result.counters.packets_trimmed:>8} {result.timeouts:>9}")

    print("\nThe shortest path is not necessarily the fastest: the extra proxy")
    print("hop moves the congestion point microseconds from the senders, so")
    print("their windows converge before the first millisecond is over.")


if __name__ == "__main__":
    main()
