"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail; ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on newer toolchains) still works
through this shim.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
