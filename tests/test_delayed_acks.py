"""Delayed-ACK coalescing semantics."""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError
from repro.experiments.runner import IncastScenario, run_incast
from repro.transport.connection import Connection
from repro.units import megabytes, microseconds, milliseconds
from tests.conftest import build_pair


@pytest.fixture()
def delack_cfg():
    return TransportConfig(payload_bytes=1024, ack_every=4,
                           delack_timeout_ps=microseconds(50))


class TestCoalescing:
    def test_fewer_acks_than_packets(self, sim, delack_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 64 * 1024, delack_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        assert conn.completed
        acks = conn.receiver.stats.acks_sent
        packets = conn.receiver.stats.data_packets
        assert acks < packets
        assert acks >= packets // delack_cfg.ack_every

    def test_per_packet_default_unchanged(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 16 * 1024, transport_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        assert conn.receiver.stats.acks_sent >= conn.receiver.stats.data_packets

    def test_tail_never_stalls(self, sim, delack_cfg):
        # 5 packets with ack_every=4: the last packet is below the batch
        # threshold but completion must still be acknowledged immediately.
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 5 * 1024, delack_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        assert conn.completed
        assert conn.sender.completed

    def test_delack_timer_bounds_the_wait(self, sim, delack_cfg):
        # a single packet (far below ack_every) must be acked within the
        # delayed-ack timeout, not never
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 1024, delack_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        assert conn.completed

    def test_batch_echoes_any_mark(self, sim):
        # force marks by a tiny ECN band, then verify marked ACKs show up
        # even though acks are coalesced
        cfg = TransportConfig(payload_bytes=1024, ack_every=4)
        from tests.conftest import build_incast_star
        from repro.units import kilobytes
        net, senders, rx = build_incast_star(
            sim, 2, delay_ps=microseconds(100), bottleneck_capacity=kilobytes(200)
        )
        conns = [Connection(net, s, rx, 150_000, cfg) for s in senders]
        for c in conns:
            c.start()
        sim.run(until=milliseconds(2000))
        assert all(c.completed for c in conns)
        assert sum(c.sender.stats.marked_acks for c in conns) > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TransportConfig(ack_every=0)
        with pytest.raises(ConfigError):
            TransportConfig(delack_timeout_ps=0)


class TestCloseReleasesBatchTail:
    def test_close_releases_held_batch_tail(self, sim, delack_cfg):
        # Regression: close() used to drop the reference to the data packet
        # held as the pending ACK-batch tail without releasing it, leaking
        # one pool buffer per receiver closed mid-batch.
        from repro.transport.receiver import AckingReceiver

        net, a, b = build_pair(sim)
        receiver = AckingReceiver(
            sim, b, flow_id=901, total_packets=8, cfg=delack_cfg,
            return_route=(a.id,),
        )
        pool = sim.packet_pool
        packet = pool.data(901, 0, a.id, b.id, payload_bytes=1024)
        receiver.on_packet(packet)
        assert receiver._batch_last is packet  # 1 < ack_every: tail is held
        released_before = pool.stats()["released"]
        receiver.close()
        assert receiver._batch_last is None
        assert pool.stats()["released"] == released_before + 1
        receiver.close()  # idempotent: must not double-release
        assert pool.stats()["released"] == released_before + 1

    def test_proxy_crash_under_fault_plan_releases_tail(self, sim, delack_cfg):
        # The path that hit the leak in practice: a Naive proxy crash closes
        # its inner receivers mid-batch under coalesced ACKs.
        from repro.faults import FaultContext, FaultInjector, proxy_crash_plan
        from repro.proxy.naive import NaiveProxy
        from tests.conftest import build_incast_star

        net, hosts, rx = build_incast_star(sim, 2)
        src, proxy_host = hosts
        proxy = NaiveProxy(net, proxy_host, delack_cfg)
        flow = proxy.relay(src, rx, 256 * 1024)
        flow.start()
        crash_at = microseconds(40)
        plan = proxy_crash_plan(at_ps=crash_at)
        FaultInjector(sim, plan, FaultContext(net, proxies={"primary": proxy})).arm()
        probe = {}
        def snapshot():
            probe["held"] = flow.inner.receiver._batch_last is not None
        sim.schedule(crash_at - 1, snapshot)
        sim.run(until=milliseconds(50))
        # the crash must have landed mid-batch or this regression tests nothing
        assert probe["held"], "crash landed between batches; move crash_at"
        assert proxy.crashed
        assert flow.inner.receiver._batch_last is None


class TestEndToEndWithDelayedAcks:
    def test_headline_survives_ack_coalescing(self):
        cfg = TransportConfig(payload_bytes=4096, ack_every=4)
        base = IncastScenario(degree=4, total_bytes=megabytes(24),
                              interdc=small_interdc_config(), transport=cfg)
        baseline = run_incast(base)
        proxied = run_incast(replace(base, scheme="streamlined"))
        assert baseline.completed and proxied.completed
        assert proxied.ict_ps < 0.5 * baseline.ict_ps
