"""The dynamic race detector: tie-break permutation, bisection, fixture.

Covers the three contracts ``python -m repro races`` rests on:

* **neutrality** — without ``tie_break_seed`` the scheduler hook is never
  installed, so default runs are byte-identical to pre-detector behavior;
* **perturbation semantics** — canonical normalization applies to every
  multi-entry tick, the shuffle is guaranteed non-identity, and ``limit``
  gates only the shuffle (``limit=0`` is the comparable baseline);
* **detection** — the seeded order-sensitive scheme is caught by
  :func:`check_scenarios` and bisected back to its racy tick.
"""

from dataclasses import replace

import pytest

from repro.analysis.races import (
    ORDER_SENSITIVE_SCHEME,
    TickRecord,
    TieBreakScheduler,
    bisect_divergence,
    check_scenarios,
    handler_qualname,
    install_tie_break,
    register_order_sensitive_fixture,
    result_digest,
    unregister_order_sensitive_fixture,
)
from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError, ExperimentError
from repro.experiments.runner import IncastScenario, run_incast
from repro.sim.simulator import Simulator
from repro.telemetry.options import RunOptions
from repro.units import kilobytes


def _scenario(**overrides):
    base = IncastScenario(
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    return replace(base, **overrides) if overrides else base


@pytest.fixture
def racy_scheme():
    register_order_sensitive_fixture()
    yield ORDER_SENSITIVE_SCHEME
    unregister_order_sensitive_fixture()


# Named module-level callbacks so canonical keys sort predictably:
# ("anon", __name__, "_alpha") < ("anon", __name__, "_beta").
_CALLS: list[str] = []


def _alpha() -> None:
    _CALLS.append("alpha")


def _beta() -> None:
    _CALLS.append("beta")


def _run_tick(detector_args: dict, schedule_order=("beta", "alpha")):
    """Schedule two free-floating callbacks at one tick and run them."""
    del _CALLS[:]
    sim = Simulator(seed=7)
    detector = install_tie_break(sim, 1, **detector_args)
    for name in schedule_order:
        sim.schedule(1_000, _alpha if name == "alpha" else _beta)
    sim.run()
    return detector


class TestRunOptionsValidation:
    def test_limit_requires_seed(self):
        with pytest.raises(ConfigError):
            RunOptions(tie_break_limit=0)

    def test_limit_must_be_non_negative(self):
        with pytest.raises(ConfigError):
            RunOptions(tie_break_seed=1, tie_break_limit=-1)

    def test_seed_bypasses_cache(self):
        assert RunOptions(tie_break_seed=1).bypasses_cache
        assert not RunOptions().bypasses_cache


class TestNeutrality:
    def test_default_runs_never_install_the_hook(self):
        sim = Simulator(seed=0)
        assert sim.scheduler.tie_break is None

    def test_default_digest_unchanged_by_detector_availability(self):
        # Importing the module and running a perturbed pass must leave
        # subsequent default runs bit-identical.
        scenario = _scenario()
        before = result_digest(run_incast(scenario))
        run_incast(scenario, RunOptions(tie_break_seed=1))
        after = result_digest(run_incast(scenario))
        assert before == after

    def test_uninstall_restores_fifo(self):
        sim = Simulator(seed=0)
        detector = install_tie_break(sim, 1)
        assert sim.scheduler.tie_break is not None
        detector.uninstall()
        assert sim.scheduler.tie_break is None


class TestTieBreakScheduler:
    def test_normalization_without_shuffle(self):
        # limit=0: no shuffle, but the canonical order (alpha before beta)
        # replaces the FIFO scheduling order (beta first).
        detector = _run_tick({"limit": 0}, schedule_order=("beta", "alpha"))
        assert _CALLS == ["alpha", "beta"]
        assert detector.multi_ticks == 1
        assert detector.permuted_ticks == 0

    def test_shuffle_is_guaranteed_non_identity(self):
        # Two free-floating domains: any non-identity permutation is the
        # swap, so the executed order must invert the canonical one.
        detector = _run_tick({}, schedule_order=("alpha", "beta"))
        assert _CALLS == ["beta", "alpha"]
        assert detector.permuted_ticks == 1

    def test_limit_gates_only_the_shuffle(self):
        sim = Simulator(seed=7)
        detector = install_tie_break(sim, 1, limit=1)
        del _CALLS[:]
        for t in (1_000, 2_000):
            sim.schedule(t, _alpha)
            sim.schedule(t, _beta)
        sim.run()
        # First tick shuffled (inverted), second normalized-canonical only.
        assert _CALLS == ["beta", "alpha", "alpha", "beta"]
        assert detector.multi_ticks == 2
        assert detector.permuted_ticks == 1

    def test_capture_records_the_requested_tick(self):
        sim = Simulator(seed=7)
        rng = sim.rng.stream("tiebreak:1")
        detector = TieBreakScheduler(sim.scheduler, rng, capture_at=0)
        sim.schedule(1_000, _alpha)
        sim.schedule(1_000, _beta)
        sim.run()
        record = detector.captured
        assert record is not None
        assert record.index == 0
        assert record.time_ps == 1_000
        assert set(record.original) == {"_alpha", "_beta"}
        assert record.permuted == tuple(reversed(record.original))
        assert record.swapped == (record.original[0], record.permuted[0])

    def test_handler_qualname_falls_back_to_type_name(self):
        class Opaque:
            def __call__(self) -> None:  # pragma: no cover - never run
                pass

        assert handler_qualname(_alpha) == "_alpha"
        assert handler_qualname(Opaque()) == "Opaque"


class TestTickRecord:
    def test_swapped_finds_first_difference(self):
        record = TickRecord(
            index=0, time_ps=5,
            original=("a", "b", "c"), permuted=("a", "c", "b"),
        )
        assert record.swapped == ("b", "c")


class TestDetection:
    def test_real_scheme_is_invariant(self):
        checks = check_scenarios([_scenario()], orders=2)
        assert len(checks) == 1
        assert checks[0].invariant
        assert checks[0].divergent_orders == []

    def test_fixture_is_caught_and_bisected(self, racy_scheme):
        scenario = _scenario(scheme=racy_scheme)
        checks = check_scenarios([scenario], orders=2)
        assert not checks[0].invariant
        report = bisect_divergence(
            scenario, checks[0].divergent_orders[0],
            baseline_digest=checks[0].baseline,
        )
        assert report.limit >= 1
        record = report.record
        assert record is not None
        # The racy claim happens at t=1000 ps and swaps the two claimants.
        assert record.time_ps == 1_000
        assert any("claim" in name for name in record.original)
        assert record.original != record.permuted
        rendered = report.render()
        assert "swapped pair" in rendered
        assert "--order" in rendered and "--limit" in rendered

    def test_bisect_refuses_invariant_scenarios(self):
        with pytest.raises(ExperimentError):
            bisect_divergence(_scenario(), 1)

    def test_orders_must_be_positive(self):
        with pytest.raises(ExperimentError):
            check_scenarios([_scenario()], orders=0)
