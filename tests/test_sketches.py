"""Streaming metric sketches: bounds, determinism, and sink parity."""

import math

import pytest

from repro.errors import ConfigError
from repro.metrics.config import DEFAULT_METRICS, MODE_SKETCH, MetricsConfig
from repro.metrics.sink import (
    DIGEST_PERCENTILES,
    DecimatingSeriesSink,
    ExactDistributionSink,
    SketchDistributionSink,
    make_distribution_sink,
    make_series_sink,
    rank_hottest,
)
from repro.metrics.sketches import GKQuantileSketch, ReservoirSample, StreamingMoments
from repro.sim.rng import derive_stream


class TestMetricsConfig:
    def test_default_is_exact_reference_mode(self):
        assert DEFAULT_METRICS.mode == "exact"
        assert not DEFAULT_METRICS.bounded

    def test_sketch_mode_is_bounded(self):
        assert MetricsConfig(mode=MODE_SKETCH).bounded

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            MetricsConfig(mode="approximate")

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigError):
            MetricsConfig(quantile_epsilon=0.0)
        with pytest.raises(ConfigError):
            MetricsConfig(quantile_epsilon=0.6)


class TestStreamingMoments:
    def test_matches_exact_statistics(self):
        rng = derive_stream(7, "moments")
        values = [rng.expovariate(1.0) for _ in range(5_000)]
        moments = StreamingMoments()
        for value in values:
            moments.observe(value)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert moments.count == len(values)
        assert math.isclose(moments.mean, mean, rel_tol=1e-9)
        assert math.isclose(moments.variance, var, rel_tol=1e-9)
        assert moments.minimum == min(values)
        assert moments.maximum == max(values)

    def test_merge_equals_single_stream(self):
        rng = derive_stream(3, "merge")
        values = [rng.random() for _ in range(2_000)]
        whole = StreamingMoments()
        left, right = StreamingMoments(), StreamingMoments()
        for i, value in enumerate(values):
            whole.observe(value)
            (left if i % 2 == 0 else right).observe(value)
        left.merge(right)
        assert left.count == whole.count
        assert math.isclose(left.mean, whole.mean, rel_tol=1e-9)
        assert math.isclose(left.variance, whole.variance, rel_tol=1e-9)


class TestReservoirSample:
    def test_deterministic_for_seed_and_name(self):
        a = ReservoirSample(64, seed=11, name="ict")
        b = ReservoirSample(64, seed=11, name="ict")
        for i in range(10_000):
            a.observe(float(i))
            b.observe(float(i))
        assert a.values == b.values

    def test_capacity_is_a_hard_bound(self):
        sample = ReservoirSample(32, seed=0, name="x")
        for i in range(100_000):
            sample.observe(float(i))
        assert len(sample.values) == 32

    def test_small_streams_kept_verbatim(self):
        sample = ReservoirSample(16, seed=0, name="x")
        for i in range(10):
            sample.observe(float(i))
        assert sample.values == [float(i) for i in range(10)]


class TestGKQuantileSketch:
    def test_error_bound_on_heavy_tailed_stream(self):
        epsilon = 0.01
        sketch = GKQuantileSketch(epsilon=epsilon)
        rng = derive_stream(5, "gk")
        values = [rng.paretovariate(1.3) for _ in range(50_000)]
        for value in values:
            sketch.observe(value)
        ranked = sorted(values)
        n = len(ranked)
        for quantile in (0.01, 0.25, 0.5, 0.9, 0.99, 0.999):
            estimate = sketch.query(quantile)
            # An eps-approximate quantile lands within eps*n ranks.
            rank = ranked.index(estimate) if estimate in ranked else None
            assert rank is not None
            target = quantile * n
            assert abs(rank - target) <= epsilon * n + 1

    def test_space_stays_sublinear(self):
        sketch = GKQuantileSketch(epsilon=0.01)
        rng = derive_stream(9, "gk-space")
        for _ in range(50_000):
            sketch.observe(rng.random())
        # GK keeps O((1/eps) * log(eps * n)) tuples; 50k exact values
        # would be 50_000.
        assert sketch.space < 2_000


class TestDecimatingSeriesSink:
    def test_respects_point_budget(self):
        sink = DecimatingSeriesSink("queue", interval_ps=1_000, max_points=64)
        for i in range(10_000):
            sink.observe(i * 1_000, float(i))
        series = sink.to_timeseries()
        assert len(series) <= 64

    def test_decimated_series_keeps_coarse_shape(self):
        sink = DecimatingSeriesSink("ramp", interval_ps=1_000, max_points=128)
        for i in range(4_096):
            sink.observe(i * 1_000, float(i))
        series = sink.to_timeseries()
        assert list(series.values) == sorted(series.values)  # a ramp stays a ramp


class TestSinkParity:
    """Sketch-mode digests must agree with exact mode within epsilon."""

    def test_quantiles_within_error_bound(self):
        config = MetricsConfig(mode=MODE_SKETCH, quantile_epsilon=0.01)
        exact_sink = make_distribution_sink(DEFAULT_METRICS, seed=1, name="ict")
        sketch_sink = make_distribution_sink(config, seed=1, name="ict")
        assert isinstance(exact_sink, ExactDistributionSink)
        assert isinstance(sketch_sink, SketchDistributionSink)
        rng = derive_stream(2, "parity")
        values = [rng.paretovariate(1.1) for _ in range(20_000)]
        for value in values:
            exact_sink.observe(value)
            sketch_sink.observe(value)
        exact = exact_sink.finalize()
        approx = sketch_sink.finalize()
        assert exact.count == approx.count
        assert math.isclose(exact.mean, approx.mean, rel_tol=1e-9)
        ranked = sorted(values)
        n = len(ranked)
        for pct in DIGEST_PERCENTILES:
            estimate = approx.percentile(pct)
            rank = ranked.index(estimate)
            assert abs(rank - pct / 100.0 * n) <= config.quantile_epsilon * n + 1

    def test_series_sink_exact_mode_keeps_every_point(self):
        sink = make_series_sink(DEFAULT_METRICS, "s", interval_ps=10)
        for i in range(100):
            sink.observe(i * 10, float(i))
        assert len(sink.to_timeseries()) == 100


class TestRankHottest:
    def test_orders_by_value_then_key(self):
        per_key = {"b": 5.0, "a": 5.0, "c": 9.0, "d": 1.0}
        assert rank_hottest(per_key, 3) == [("c", 9.0), ("a", 5.0), ("b", 5.0)]
