"""Shared switch buffers with Dynamic Threshold admission."""

import random

import pytest

from repro.config import FabricConfig, small_interdc_config
from repro.errors import ConfigError
from repro.net.buffers import SharedBuffer, SharedEcnQueue
from repro.net.packet import make_data
from repro.net.queues import EnqueueOutcome
from repro.sim.simulator import Simulator
from repro.topology.interdc import build_interdc
from repro.topology.leafspine import build_leafspine
from repro.net.network import Network
from repro.units import kilobytes


def data(seq=0, payload=1000):
    return make_data(1, seq, 0, 1, payload_bytes=payload)


class TestSharedBuffer:
    def test_accounting(self):
        pool = SharedBuffer(10_000)
        pool.acquire(4_000)
        assert pool.occupied_bytes == 4_000
        assert pool.free_bytes == 6_000
        pool.release(4_000)
        assert pool.occupied_bytes == 0
        assert pool.peak_bytes == 4_000

    def test_positive_capacity_required(self):
        with pytest.raises(ConfigError):
            SharedBuffer(0)


class TestSharedEcnQueue:
    def make(self, total=100_000, alpha=1.0, low=2_000, high=5_000):
        pool = SharedBuffer(total)
        q1 = SharedEcnQueue(pool, alpha, low, high, random.Random(0))
        q2 = SharedEcnQueue(pool, alpha, low, high, random.Random(1))
        return pool, q1, q2

    def test_single_port_can_take_alpha_share(self):
        # alpha=1: a lone port may fill up to half the pool
        # (occupancy == free at the fixed point).
        pool, q, _ = self.make(total=10_000, alpha=1.0)
        accepted = 0
        for i in range(20):
            if q.offer(data(seq=i, payload=436)) is EnqueueOutcome.ENQUEUED:
                accepted += 1
        assert q.occupied_bytes <= pool.total_bytes // 2 + 500
        assert accepted < 20

    def test_busy_neighbor_shrinks_threshold(self):
        pool, q1, q2 = self.make(total=20_000, alpha=0.5)
        before = q1.threshold_bytes()
        for i in range(10):
            q2.offer(data(seq=i))
        assert q1.threshold_bytes() < before

    def test_draining_restores_capacity(self):
        pool, q1, q2 = self.make(total=20_000, alpha=0.5)
        for i in range(10):
            q2.offer(data(seq=i))
        shrunk = q1.threshold_bytes()
        while q2.pop() is not None:
            pass
        assert q1.threshold_bytes() > shrunk
        assert pool.occupied_bytes == 0

    def test_pool_never_overcommitted(self):
        pool, q1, q2 = self.make(total=8_000, alpha=4.0)
        for i in range(30):
            (q1 if i % 2 else q2).offer(data(seq=i))
        assert pool.occupied_bytes <= pool.total_bytes

    def test_ecn_marks_on_own_occupancy(self):
        pool, q, _ = self.make(total=1_000_000, alpha=8.0, low=1_000, high=2_000)
        marked = 0
        for i in range(10):
            p = data(seq=i)
            q.offer(p)
            marked += p.ecn_ce
        assert marked > 0

    def test_fifo_order_preserved(self):
        _, q, _ = self.make()
        for i in range(3):
            q.offer(data(seq=i))
        assert [q.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_alpha_validation(self):
        pool = SharedBuffer(1000)
        with pytest.raises(ConfigError):
            SharedEcnQueue(pool, 0, 0, 0, random.Random(0))


class TestTopologyIntegration:
    def test_switch_ports_share_one_pool(self, sim):
        net = Network(sim)
        cfg = FabricConfig(spines=1, leaves=1, servers_per_leaf=2,
                           shared_buffer_alpha=1.0)
        fabric = build_leafspine(net, cfg)
        leaf = fabric.leaves[0]
        pools = {id(port.queue.shared) for port in leaf.ports.values()}
        assert len(pools) == 1
        spine = fabric.spines[0]
        assert id(next(iter(spine.ports.values())).queue.shared) not in pools

    def test_shared_buffers_with_trimming_rejected(self, sim):
        net = Network(sim)
        cfg = FabricConfig(spines=1, leaves=1, servers_per_leaf=1,
                           shared_buffer_alpha=1.0)
        with pytest.raises(ConfigError):
            build_leafspine(net, cfg, trimming=True)

    def test_interdc_with_shared_buffers_runs(self, sim, transport_cfg):
        from repro.experiments.runner import IncastScenario, run_incast
        from repro.units import megabytes
        cfg = small_interdc_config().with_shared_buffers(2.0)
        result = run_incast(IncastScenario(
            degree=4, total_bytes=megabytes(12), interdc=cfg, transport=transport_cfg,
        ))
        assert result.completed

    def test_invalid_alpha_in_config(self):
        with pytest.raises(ConfigError):
            FabricConfig(shared_buffer_alpha=0)
