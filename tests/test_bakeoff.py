"""The bake-off CLI: grid construction, ranking, exports, determinism."""

import math
from dataclasses import replace

import pytest

from repro.competitors import uninstall
from repro.errors import ConfigError
from repro.experiments.bakeoff import (
    BakeoffRow,
    bakeoff_base_scenario,
    bakeoff_figure,
    bakeoff_grid,
    bakeoff_table,
    export_bakeoff,
    main,
    rank_bakeoff,
    scale_buffers,
)
from repro.experiments.sweeps import sweep_digest
from repro.units import kilobytes


def _tiny_points(**kwargs):
    base = replace(bakeoff_base_scenario(), total_bytes=kilobytes(100))
    return bakeoff_grid(
        base,
        degrees=(2,),
        delays_ps=(base.interdc.backbone_delay_ps,),
        buffer_scales=(1.0,),
        schemes=("baseline", "naive"),
        reps=1,
        **kwargs,
    )


class TestScaleBuffers:
    def test_scales_capacity_and_ecn_thresholds_together(self):
        interdc = bakeoff_base_scenario().interdc
        half = scale_buffers(interdc, 0.5)
        for spec, orig in (
            (half.fabric.switch_queue, interdc.fabric.switch_queue),
            (half.backbone_queue, interdc.backbone_queue),
        ):
            assert spec.capacity_bytes == round(orig.capacity_bytes * 0.5)
            assert spec.ecn_low_bytes == round(orig.ecn_low_bytes * 0.5)
            assert spec.ecn_high_bytes == round(orig.ecn_high_bytes * 0.5)
            # The QueueSpec validator re-ran and accepted the scaled spec.
            assert 0 <= spec.ecn_low_bytes <= spec.ecn_high_bytes <= spec.capacity_bytes

    def test_rejects_non_positive_factor(self):
        interdc = bakeoff_base_scenario().interdc
        with pytest.raises(ValueError):
            scale_buffers(interdc, 0)

    def test_extreme_shrink_still_validates(self):
        # Tiny factors must not round thresholds above capacity.
        scale_buffers(bakeoff_base_scenario().interdc, 1e-6)


class TestRanking:
    def test_rows_sorted_by_mean_ict_and_ranked(self):
        points = _tiny_points()
        rows = rank_bakeoff(points, ("baseline", "naive"))
        assert [r.rank for r in rows] == [1, 2]
        assert rows[0].mean_ict_ps <= rows[1].mean_ict_ps
        assert {r.scheme for r in rows} == {"baseline", "naive"}
        baseline = next(r for r in rows if r.scheme == "baseline")
        assert baseline.mean_reduction is None

    def test_fault_ratio_column_is_attached(self):
        points = _tiny_points()
        rows = rank_bakeoff(points, ("baseline", "naive"), {"naive": 1.5})
        by_name = {r.scheme: r for r in rows}
        assert by_name["naive"].fault_ratio == 1.5
        assert by_name["baseline"].fault_ratio is None

    def test_table_and_figure_render_every_scheme(self):
        rows = rank_bakeoff(_tiny_points(), ("baseline", "naive"))
        table = bakeoff_table(rows)
        figure = bakeoff_figure(rows)
        for name in ("baseline", "naive"):
            assert name in table
            assert name in figure
        assert "mean ICT" in table
        assert "shorter is better" in figure

    def test_missing_data_ranks_last(self):
        rows = [
            BakeoffRow(0, "good", "Good", 5.0, None, 0, 0, 0, 0, 0, True, None),
            BakeoffRow(0, "empty", "Empty", float("nan"), None, 0, 0, 0, 0,
                       3, False, None),
        ]
        ranked = sorted(
            rows, key=lambda r: (math.isnan(r.mean_ict_ps), r.mean_ict_ps)
        )
        assert ranked[0].scheme == "good"
        assert "n/a" in bakeoff_table(rows)
        assert "n/a" in bakeoff_figure(rows)


class TestDeterminism:
    def test_grid_digest_identical_across_worker_counts(self):
        serial = sweep_digest(_tiny_points(workers=1))
        fanned = sweep_digest(_tiny_points(workers=2))
        assert serial == fanned


class TestExport:
    def test_export_writes_all_artifacts(self, tmp_path):
        points = _tiny_points()
        rows = rank_bakeoff(points, ("baseline", "naive"))
        digest = sweep_digest(points)
        written = export_bakeoff(rows, points, tmp_path, digest)
        names = {path.name for path in written}
        assert names == {
            "bakeoff_summary.csv",
            "bakeoff_summary.json",
            "bakeoff_grid.csv",
            "bakeoff_figure.txt",
        }
        for path in written:
            assert path.exists() and path.stat().st_size > 0
        assert digest in (tmp_path / "bakeoff_summary.json").read_text()


class TestCli:
    def test_smoke_ranks_all_registered_schemes(self, capsys):
        try:
            main(["--smoke", "--no-cache"])
        finally:
            uninstall()  # main() installs the competitors globally
        out = capsys.readouterr().out
        assert "8 schemes" in out
        assert "sweep_digest: " in out
        for name in ("repflow", "pulser", "pulser-dist", "baseline",
                     "streamlined", "trimless", "proxy-failover", "naive"):
            assert name in out

    def test_rejects_bad_reps(self):
        try:
            with pytest.raises(SystemExit):
                main(["--reps", "0"])
        finally:
            uninstall()
