"""Proxy corner cases: remote trimming, inner-leg congestion, relay reuse."""

import pytest

from repro.config import QueueSpec, TransportConfig
from repro.net.network import Network
from repro.net.packet import PacketType
from repro.proxy.naive import NaiveProxy
from repro.proxy.streamlined import StreamlinedProxy
from repro.transport.connection import Connection
from repro.units import gbps, kilobytes, megabytes, microseconds, milliseconds


def build_two_stage(sim, *, near_trim=False, far_trim=False,
                    near_cap=megabytes(4), far_cap=megabytes(4),
                    proxy_rate=gbps(10)):
    """senders -> s_near -> proxyhost/-> s_far -> receiver.

    Two switches so congestion can be placed either before the proxy
    (near, its down-port) or after it (far, the receiver's down-port).
    """
    net = Network(sim)
    tx1 = net.add_host("tx1")
    tx2 = net.add_host("tx2")
    proxy_host = net.add_host("proxy")
    receiver = net.add_host("rx")
    s_near = net.add_switch("near")
    s_far = net.add_switch("far")
    host = QueueSpec(kind="host", capacity_bytes=megabytes(500))

    def spec(trim, cap):
        return QueueSpec(kind="trimming" if trim else "ecn", capacity_bytes=cap,
                         ecn_low_bytes=kilobytes(10),
                         ecn_high_bytes=min(kilobytes(30), cap))

    wide_near = spec(near_trim, megabytes(8))
    down_near = spec(near_trim, near_cap)
    wide_far = spec(far_trim, megabytes(8))
    down_far = spec(far_trim, far_cap)
    rng = sim.rng.stream
    for i, tx in enumerate((tx1, tx2)):
        net.connect(tx, s_near, gbps(40), microseconds(1),
                    queue_ab=host.build(None), queue_ba=wide_near.build(rng(f"n{i}")))
    net.connect(proxy_host, s_near, proxy_rate, microseconds(1),
                queue_ab=host.build(None), queue_ba=down_near.build(rng("np")))
    net.connect(s_near, s_far, gbps(40), milliseconds(1),
                queue_ab=wide_near.build(rng("nf")), queue_ba=wide_far.build(rng("fn")))
    net.connect(receiver, s_far, gbps(10), microseconds(1),
                queue_ab=host.build(None), queue_ba=down_far.build(rng("fr")))
    net.finalize()
    return net, (tx1, tx2), proxy_host, receiver


class TestRemoteTrimming:
    def test_receiver_nacks_travel_back_through_proxy(self, sim, transport_cfg):
        """A packet trimmed *after* the proxy reaches the receiver as a
        header; the receiver's NACK must ride the return route (via the
        proxy) back to the sender."""
        # a fast proxy NIC (40G) relaying into the receiver's 10G down-port
        # guarantees trims happen beyond the proxy
        net, (tx1, tx2), proxy_host, receiver = build_two_stage(
            sim, far_trim=True, far_cap=kilobytes(40), proxy_rate=gbps(40)
        )
        proxy = StreamlinedProxy(sim, proxy_host)
        conns = []
        for tx in (tx1, tx2):
            conn = Connection(net, tx, receiver, 200_000, transport_cfg,
                              via=(proxy_host,))
            proxy.attach(conn)
            conn.cc.cwnd = conn.total_packets  # force a burst past the proxy
            conns.append(conn)
            conn.start()
        sim.run(until=milliseconds(2000))
        assert all(c.completed for c in conns)
        receiver_nacks = sum(c.receiver.stats.nacks_sent for c in conns)
        assert receiver_nacks > 0  # trims happened beyond the proxy
        # those NACKs were forwarded (not absorbed) by the proxy
        assert proxy.stats.control_forwarded > 0
        assert sum(c.sender.stats.nacks_received for c in conns) >= receiver_nacks

    def test_proxy_absorbs_near_trims_but_forwards_far_ones(self, sim, transport_cfg):
        net, (tx1, tx2), proxy_host, receiver = build_two_stage(
            sim, near_trim=True, far_trim=True,
            near_cap=kilobytes(40), far_cap=megabytes(8),
        )
        proxy = StreamlinedProxy(sim, proxy_host)
        conns = []
        for tx in (tx1, tx2):
            conn = Connection(net, tx, receiver, 200_000, transport_cfg,
                              via=(proxy_host,))
            proxy.attach(conn)
            conn.cc.cwnd = conn.total_packets
            conns.append(conn)
            conn.start()
        sim.run(until=milliseconds(2000))
        assert all(c.completed for c in conns)
        assert proxy.stats.trimmed_absorbed > 0
        # headers absorbed at the proxy never reached the receiver
        assert sum(c.receiver.stats.trimmed_headers for c in conns) == 0


class TestNaiveInnerLegCongestion:
    def test_inner_leg_trimming_recovers_locally(self, sim, transport_cfg):
        """With trimming on the proxy's down-port, the inner (local) legs
        see NACK-based recovery entirely inside the near segment."""
        net, (tx1, tx2), proxy_host, receiver = build_two_stage(
            sim, near_trim=True, near_cap=kilobytes(40)
        )
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        flows = [proxy.relay(tx, receiver, 200_000) for tx in (tx1, tx2)]
        for flow in flows:
            flow.inner.cc.cwnd = flow.inner.total_packets  # burst the local leg
            flow.start()
        sim.run(until=milliseconds(2000))
        assert all(f.completed for f in flows)
        inner_nacks = sum(f.inner.sender.stats.nacks_received for f in flows)
        assert inner_nacks > 0
        # the long legs saw none of it
        assert all(f.outer.sender.stats.nacks_received == 0 for f in flows)

    def test_relay_reuse_across_sequential_flows(self, sim, transport_cfg):
        net, (tx1, tx2), proxy_host, receiver = build_two_stage(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        first = proxy.relay(tx1, receiver, 50_000)
        first.start()
        sim.run(until=milliseconds(500))
        assert first.completed
        second = proxy.relay(tx2, receiver, 50_000)
        second.start()
        sim.run(until=milliseconds(1000))
        assert second.completed
        assert len(proxy.flows) == 2
