"""Checkpoint/restore: file format, closure pickling, kill/resume digests."""

import struct

import pytest

from repro.competitors import install, uninstall
from repro.metrics.config import MODE_SKETCH, MetricsConfig
from repro.schemes import SCHEME_REGISTRY
from repro.sim.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    _MAGIC,
    dumps,
    load_checkpoint,
    loads,
    save_checkpoint,
)
from repro.units import milliseconds, seconds
from repro.workloads.engine import (
    DiurnalCurve,
    OpenLoopEngine,
    WorkloadEngineConfig,
)
from repro.workloads.sizes import HeavyTailConfig


@pytest.fixture
def competitors():
    """Install the competitor schemes, and always tear them down again."""
    install()
    try:
        yield
    finally:
        uninstall()


class TestCheckpointFormat:
    def test_round_trips_plain_payloads(self, tmp_path):
        payload = {"counts": [1, 2, 3], "nested": {"pi": 3.14}}
        path = save_checkpoint(tmp_path / "plain.ckpt", payload)
        assert load_checkpoint(path) == payload

    def test_rejects_non_checkpoint_files(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_rejects_missing_files(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_rejects_schema_version_mismatch(self, tmp_path):
        path = save_checkpoint(tmp_path / "v.ckpt", [1, 2])
        blob = bytearray(path.read_bytes())
        struct.pack_into("<I", blob, len(_MAGIC), CHECKPOINT_SCHEMA_VERSION + 1)
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path)

    def test_rejects_foreign_python_tag(self, tmp_path):
        tag = b"cpython-0.0"
        blob = (
            _MAGIC
            + struct.pack("<I", CHECKPOINT_SCHEMA_VERSION)
            + struct.pack("<H", len(tag))
            + tag
            + b"\x00" * 32
        )
        path = tmp_path / "tag.ckpt"
        path.write_bytes(blob)
        with pytest.raises(CheckpointError, match="cpython-0.0"):
            load_checkpoint(path)

    def test_rejects_corrupt_body(self, tmp_path):
        path = save_checkpoint(tmp_path / "c.ckpt", {"k": "v"})
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_write_is_atomic(self, tmp_path):
        path = save_checkpoint(tmp_path / "a.ckpt", "first")
        save_checkpoint(path, "second")
        assert load_checkpoint(path) == "second"
        assert not (tmp_path / "a.ckpt.tmp").exists()


def _module_level_probe(x):
    return x + 1


class TestClosureSerialization:
    def test_module_functions_pickle_by_reference(self):
        restored = loads(dumps(_module_level_probe))
        assert restored is _module_level_probe

    def test_lambda_round_trips(self):
        fn = lambda x: x * 3  # noqa: E731 - the point of the test
        assert loads(dumps(fn))(7) == 21

    def test_closure_cells_round_trip(self):
        def make(base):
            def add(x):
                return base + x
            return add

        restored = loads(dumps(make(10)))
        assert restored(5) == 15

    def test_shared_state_restores_as_one_object(self):
        # A container referenced both by a closure cell and directly in
        # the graph must come back as a single shared object.
        shared = [0]

        def bump():
            shared[0] += 1
            return shared[0]

        restored_bump, restored_shared = loads(dumps((bump, shared)))
        restored_bump()
        assert restored_shared == [1]

    def test_defaults_and_kwdefaults_survive(self):
        def fn(a, b=2, *, c=3):
            return a + b + c

        restored = loads(dumps(fn))
        assert restored(1) == 6

    def test_unpicklable_payload_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="not serializable"):
            save_checkpoint(tmp_path / "bad.ckpt", open(tmp_path / "bad.ckpt", "wb"))


def _tiny_config(scheme, **overrides):
    """A seconds-scale open-loop run: enough tenants to matter, fast."""
    defaults = dict(
        scheme=scheme,
        horizon_ps=seconds(2),
        segment_ps=milliseconds(500),
        peak_arrivals_per_s=40.0,
        sizes=HeavyTailConfig(
            minimum_bytes=64_000, maximum_bytes=2_000_000, alpha=1.3
        ),
        diurnal=DiurnalCurve(period_ps=seconds(2), trough=0.5),
        metrics=MetricsConfig(mode=MODE_SKETCH),
        seed=3,
    )
    defaults.update(overrides)
    return WorkloadEngineConfig(**defaults)


def _advance_to(engine, until_ps):
    """Grid-aligned manual segments — the same boundaries run() would hit."""
    segment = engine.config.segment_ps
    horizon = engine.config.horizon_ps
    while engine.sim.now < until_ps:
        boundary = min(horizon, ((engine.sim.now // segment) + 1) * segment)
        engine.sim.run(until=boundary)
        engine.segments_done += 1
        engine.rss_track.append((engine.sim.now, 0))


class TestKillRestoreDigests:
    """The durability contract: interrupt anywhere, resume, same digest."""

    def test_every_scheme_resumes_bit_identical(self, competitors, tmp_path):
        for scheme in SCHEME_REGISTRY.names():
            uninterrupted = OpenLoopEngine(_tiny_config(scheme)).run()

            engine = OpenLoopEngine(_tiny_config(scheme))
            _advance_to(engine, seconds(1))  # "SIGKILL" at half-horizon
            path = save_checkpoint(tmp_path / f"{scheme}.ckpt", engine)
            del engine
            restored = load_checkpoint(path)
            assert isinstance(restored, OpenLoopEngine)
            resumed = restored.run()

            assert resumed.digest == uninterrupted.digest, scheme
            assert resumed.jobs_completed == uninterrupted.jobs_completed

    def test_resume_with_predictor_is_bit_identical(self, tmp_path):
        config = _tiny_config("streamlined", pattern_predictor=True)
        uninterrupted = OpenLoopEngine(config).run()

        engine = OpenLoopEngine(config)
        _advance_to(engine, seconds(1))
        path = save_checkpoint(tmp_path / "pred.ckpt", engine)
        resumed = load_checkpoint(path).run()
        assert resumed.digest == uninterrupted.digest

    def test_checkpoint_is_a_snapshot_not_a_live_view(self, tmp_path):
        engine = OpenLoopEngine(_tiny_config("baseline"))
        _advance_to(engine, seconds(1))
        path = save_checkpoint(tmp_path / "snap.ckpt", engine)
        engine.run()  # drive the original to completion
        restored = load_checkpoint(path)
        assert restored.sim.now < engine.sim.now
        assert restored.run().digest == engine.result().digest

    def test_exact_metrics_mode_also_resumes(self, tmp_path):
        config = _tiny_config("naive", metrics=MetricsConfig())
        uninterrupted = OpenLoopEngine(config).run()
        engine = OpenLoopEngine(config)
        _advance_to(engine, seconds(1))
        path = save_checkpoint(tmp_path / "exact.ckpt", engine)
        resumed = load_checkpoint(path).run()
        assert resumed.digest == uninterrupted.digest
