"""End-to-end checks of the paper's qualitative claims on the small topology.

These are the reproduction's acceptance tests: each asserts a *shape* from
§4.2 — who wins, where the crossovers fall — on the scaled-down two-DC
fabric so the whole file stays under a minute.
"""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.experiments.runner import IncastScenario, run_incast
from repro.units import megabytes, microseconds, milliseconds


@pytest.fixture(scope="module")
def base():
    return IncastScenario(
        degree=4,
        total_bytes=megabytes(20),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )


def ict(scenario, **overrides):
    return run_incast(replace(scenario, **overrides)).ict_ps


class TestHeadlineClaim:
    """§1/§4: adding the proxy hop *reduces* incast completion time."""

    def test_both_proxies_beat_baseline_substantially(self, base):
        baseline = ict(base, scheme="baseline")
        naive = ict(base, scheme="naive")
        streamlined = ict(base, scheme="streamlined")
        # The paper reports 50-75% reductions; demand at least 40% here.
        assert naive < 0.6 * baseline
        assert streamlined < 0.6 * baseline

    def test_trimless_variant_also_beats_baseline(self, base):
        baseline = ict(base, scheme="baseline")
        trimless = ict(base, scheme="trimless")
        assert trimless < baseline


class TestDegreeClaim:
    """Fig. 2 (Left): benefit grows with incast degree (more initial overload)."""

    def test_reduction_grows_with_degree(self, base):
        # At 8 MB total on the small fabric, degree 2 stays under the buffer
        # (per-flow 4 MB) while degree 6 overflows it — the paper's trend in
        # miniature.  (Degree 8 would consume every DC0 server, leaving no
        # proxy host.)
        reductions = []
        for degree in (2, 6):
            baseline = ict(base, scheme="baseline", degree=degree,
                           total_bytes=megabytes(8))
            streamlined = ict(base, scheme="streamlined", degree=degree,
                              total_bytes=megabytes(8))
            reductions.append((baseline - streamlined) / baseline)
        assert reductions[1] > reductions[0] + 0.3


class TestSizeClaim:
    """Fig. 2 (Right): no benefit for incasts small enough to avoid
    first-RTT loss; large benefit beyond."""

    def test_small_incast_parity(self, base):
        small = megabytes(2)
        baseline = ict(base, scheme="baseline", total_bytes=small)
        streamlined = ict(base, scheme="streamlined", total_bytes=small)
        naive = ict(base, scheme="naive", total_bytes=small)
        assert streamlined == pytest.approx(baseline, rel=0.15)
        assert naive == pytest.approx(baseline, rel=0.15)

    def test_large_incast_benefits(self, base):
        large = megabytes(30)
        baseline = ict(base, scheme="baseline", total_bytes=large)
        streamlined = ict(base, scheme="streamlined", total_bytes=large)
        assert streamlined < 0.6 * baseline


class TestLatencyClaim:
    """Fig. 3: benefit appears beyond ~100us link latency and grows with it."""

    def test_parity_at_intra_dc_latency(self, base):
        cfg = base.interdc.with_backbone_delay(microseconds(1))
        baseline = ict(base, scheme="baseline", interdc=cfg)
        streamlined = ict(base, scheme="streamlined", interdc=cfg)
        assert streamlined == pytest.approx(baseline, rel=0.35)

    def test_benefit_grows_with_latency(self, base):
        reductions = []
        for delay in (milliseconds(1), milliseconds(10)):
            cfg = base.interdc.with_backbone_delay(delay)
            baseline = ict(base, scheme="baseline", interdc=cfg)
            naive = ict(base, scheme="naive", interdc=cfg)
            reductions.append((baseline - naive) / baseline)
        assert reductions[1] > reductions[0]
        assert reductions[1] > 0.5

    def test_baseline_ict_scales_with_rtt_proxy_does_not(self, base):
        base_1ms = ict(base, scheme="baseline")
        cfg10 = base.interdc.with_backbone_delay(milliseconds(10))
        base_10ms = ict(base, scheme="baseline", interdc=cfg10)
        naive_1ms = ict(base, scheme="naive")
        naive_10ms = ict(base, scheme="naive", interdc=cfg10)
        # The proxy only pays the extra propagation (~2 x 9 ms one-way);
        # the baseline pays it on every feedback iteration.
        assert base_10ms - base_1ms > 5 * (naive_10ms - naive_1ms)
        assert naive_10ms - naive_1ms < 3 * 2 * milliseconds(9)


class TestMechanism:
    """§3 insights: the *reason* the proxy wins must hold, not just the number."""

    def test_streamlined_converts_all_congestion_to_trims(self, base):
        result = run_incast(replace(base, scheme="streamlined"))
        assert result.counters.packets_trimmed > 0
        assert result.counters.packets_dropped == 0
        assert result.proxy_nacks_sent == result.counters.packets_trimmed

    def test_baseline_suffers_timeouts_proxies_do_not(self, base):
        baseline = run_incast(replace(base, scheme="baseline"))
        naive = run_incast(replace(base, scheme="naive"))
        streamlined = run_incast(replace(base, scheme="streamlined"))
        assert baseline.timeouts >= 1
        assert naive.timeouts == 0
        assert streamlined.timeouts == 0

    def test_congestion_point_moves_to_sending_dc(self, base):
        def hottest_down_tor(result):
            down_tor = {
                name: depth
                for name, depth in result.counters.per_port_max.items()
                if "leaf" in name.split("->")[0] and "-h" in name.split("->")[1]
            }
            return max(down_tor.items(), key=lambda kv: kv[1])[0]

        streamlined = run_incast(replace(base, scheme="streamlined"))
        assert hottest_down_tor(streamlined).startswith("dc0")  # proxy down-ToR
        baseline = run_incast(replace(base, scheme="baseline"))
        assert hottest_down_tor(baseline).startswith("dc1")  # receiver down-ToR

    def test_naive_local_leg_sees_no_loss(self, base):
        result = run_incast(replace(base, scheme="naive"))
        # marks throttle the local leg; nothing needs retransmission at all
        assert result.retransmissions == 0
        assert result.counters.packets_marked > 0
