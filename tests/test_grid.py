"""GridSpec: odometer order, sharding, serialization, and streaming folds."""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.grid import (
    Axis,
    AxisValue,
    GridSpec,
    RunSample,
    SweepFold,
    axis,
    config_from_doc,
    scenario_from_doc,
    scenario_to_doc,
)
from repro.experiments.parallel import ExperimentEngine, RunFailure
from repro.experiments.runner import IncastScenario
from repro.experiments.sweeps import degree_sweep_spec, sweep_digest
from repro.units import kilobytes


def _base(**overrides):
    scenario = IncastScenario(
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    return replace(scenario, **overrides) if overrides else scenario


def _spec(degrees=(2, 4), schemes=("baseline", "naive"), reps=2, seed0=0):
    return degree_sweep_spec(_base(), degrees, schemes, reps=reps, seed0=seed0)


class TestGridSpec:
    def test_odometer_order_matches_nested_loops(self):
        spec = _spec(degrees=(2, 4), schemes=("baseline", "naive"), reps=2)
        expected = []
        for degree in (2, 4):  # the nested loops the drivers used to write
            for scheme in ("baseline", "naive"):
                for rep in range(2):
                    expected.append((degree, scheme, rep))
        got = [
            (cell.scenario.degree, cell.scenario.scheme, cell.scenario.seed)
            for cell in spec.expand()
        ]
        assert got == expected

    def test_cells_reproduce_legacy_replace_scenarios(self):
        base = _base()
        spec = degree_sweep_spec(base, (3, 5), ("baseline",), reps=2, seed0=7)
        legacy = [
            replace(base, degree=d, scheme="baseline", seed=7 + r)
            for d in (3, 5)
            for r in range(2)
        ]
        assert [cell.scenario for cell in spec.expand()] == legacy

    def test_len_and_cell_bounds(self):
        spec = _spec()
        assert len(spec) == 2 * 2 * 2
        with pytest.raises(ExperimentError):
            spec.cell(len(spec))
        with pytest.raises(ExperimentError):
            spec.cell(-1)

    def test_shards_partition_the_grid(self):
        spec = _spec()
        indices = [
            [cell.index for cell in spec.shard(i, 3)] for i in range(3)
        ]
        flat = sorted(i for shard in indices for i in shard)
        assert flat == list(range(len(spec)))
        with pytest.raises(ExperimentError):
            list(spec.shard(3, 3))
        with pytest.raises(ExperimentError):
            list(spec.shard(0, 0))

    def test_json_round_trip_preserves_cells_and_fingerprint(self):
        spec = _spec(seed0=3)
        clone = GridSpec.from_json(spec.to_json())
        assert clone.fingerprint() == spec.fingerprint()
        assert [c.scenario for c in clone.expand()] == [
            c.scenario for c in spec.expand()
        ]

    def test_fingerprint_changes_with_any_axis_edit(self):
        assert _spec(reps=2).fingerprint() != _spec(reps=3).fingerprint()
        assert _spec(seed0=0).fingerprint() != _spec(seed0=1).fingerprint()

    def test_rejects_duplicate_axis_names_and_empty_axes(self):
        ax = axis("point", "degree", [2])
        with pytest.raises(ExperimentError, match="duplicate"):
            GridSpec(base=_base(), axes=(ax, ax))
        with pytest.raises(ExperimentError, match="no values"):
            Axis("point", "degree", ())
        with pytest.raises(ExperimentError):
            GridSpec(base=_base(), axes=())

    def test_rejects_unknown_applier(self):
        with pytest.raises(ExperimentError):
            Axis("point", "not-an-applier", (AxisValue(1, "1"),))

    def test_cell_coord_lookup(self):
        cell = _spec().cell(0)
        assert cell.coord("scheme").value == "baseline"
        with pytest.raises(ExperimentError):
            cell.coord("nope")

    def test_scenario_doc_round_trip(self):
        scenario = _base(scheme="naive", seed=5)
        assert scenario_from_doc(scenario_to_doc(scenario)) == scenario

    def test_config_from_doc_rejects_unknown_type(self):
        with pytest.raises(ExperimentError, match="unknown config type"):
            config_from_doc({"__type__": "NoSuchConfig"})


class TestSweepFold:
    def _entries(self, spec):
        engine = ExperimentEngine(workers=1)
        return engine.run_incasts_detailed([c.scenario for c in spec.expand()])

    def test_fold_is_order_independent(self):
        spec = _spec(degrees=(2,), schemes=("baseline", "naive"), reps=2)
        entries = self._entries(spec)

        def digest(order):
            fold = SweepFold(spec)
            for index in order:
                fold.add(index, entries[index])
            return sweep_digest(fold.finish())

        forward = digest(range(len(entries)))
        assert digest(reversed(range(len(entries)))) == forward
        assert digest([1, 3, 0, 2]) == forward

    def test_fold_rejects_duplicates_and_incomplete_grids(self):
        spec = _spec(degrees=(2,), schemes=("baseline",), reps=2)
        entries = self._entries(spec)
        fold = SweepFold(spec)
        fold.add(0, entries[0])
        with pytest.raises(ExperimentError, match="folded twice"):
            fold.add(0, entries[0])
        with pytest.raises(ExperimentError, match="incomplete"):
            fold.finish()
        fold.add(1, entries[1])
        points = fold.finish()
        assert points[0].schemes["baseline"].ict.count == 2

    def test_fold_requires_point_scheme_rep_axes(self):
        spec = GridSpec(base=_base(), axes=(axis("point", "degree", [2]),))
        with pytest.raises(ExperimentError, match="scheme"):
            SweepFold(spec)

    def test_failures_become_quarantined_samples(self):
        spec = _spec(degrees=(2,), schemes=("baseline",), reps=2)
        entries = self._entries(spec)
        fold = SweepFold(spec)
        fold.add(0, entries[0])
        fold.add(1, RunFailure(
            scenario=spec.cell(1).scenario, kind="timeout",
            message="deadline", attempts=1, elapsed_seconds=0.0,
        ))
        [point] = fold.finish()
        summary = point.schemes["baseline"]
        assert summary.failures == 1
        assert summary.ict.count == 1
        assert not summary.all_completed

    def test_run_sample_reduces_failures(self):
        failure = RunFailure(
            scenario=_base(), kind="exception", message="boom",
            attempts=2, elapsed_seconds=0.1,
        )
        sample = RunSample.from_result(failure)
        assert not sample.ok and not sample.completed
