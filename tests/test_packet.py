"""Packet semantics: trimming, source-route stops, classification."""

import pytest

from repro.net.packet import HEADER_BYTES, Packet, PacketType, make_ack, make_data, make_nack


class TestDataPackets:
    def test_wire_size_includes_header(self):
        pkt = make_data(1, 0, 10, 20, payload_bytes=4096)
        assert pkt.size_bytes == 4096 + HEADER_BYTES
        assert pkt.payload_bytes == 4096

    def test_trim_cuts_to_header(self):
        pkt = make_data(1, 5, 10, 20, payload_bytes=4096)
        pkt.trim()
        assert pkt.trimmed
        assert pkt.payload_bytes == 0
        assert pkt.size_bytes == HEADER_BYTES
        assert pkt.seq == 5  # identity survives trimming

    def test_trimmed_data_is_control(self):
        pkt = make_data(1, 0, 10, 20, payload_bytes=100)
        assert not pkt.is_control
        pkt.trim()
        assert pkt.is_control

    def test_custom_header_bytes(self):
        pkt = make_data(1, 0, 10, 20, payload_bytes=100, header_bytes=40)
        assert pkt.size_bytes == 140

    def test_default_timestamps_are_unset(self):
        pkt = make_data(1, 0, 10, 20, payload_bytes=1)
        assert pkt.ts == -1 and pkt.ts_echo == -1


class TestSourceRouting:
    def test_pop_stop_advances(self):
        pkt = make_data(1, 0, 10, 99, payload_bytes=1, stops=(20, 30))
        pkt.pop_stop()
        assert pkt.dst == 20 and pkt.stops == (30,)
        pkt.pop_stop()
        assert pkt.dst == 30 and pkt.stops == ()

    def test_return_stops_preserved(self):
        pkt = make_data(1, 0, 10, 20, payload_bytes=1, return_stops=(20, 10))
        assert pkt.return_stops == (20, 10)


class TestControlPackets:
    def test_ack_carries_cumulative_and_echo(self):
        ack = make_ack(3, 20, 10, ack_seq=7, echo_seq=9, ecn_echo=True, ts_echo=555)
        assert ack.kind == PacketType.ACK
        assert (ack.ack_seq, ack.echo_seq) == (7, 9)
        assert ack.ecn_echo and ack.ts_echo == 555
        assert ack.is_control
        assert ack.size_bytes == HEADER_BYTES

    def test_nack_references_lost_seq(self):
        nack = make_nack(3, 11, 20, 10, ts_echo=777)
        assert nack.kind == PacketType.NACK
        assert nack.echo_seq == 11 and nack.seq == 11
        assert nack.ts_echo == 777
        assert nack.is_control

    def test_ack_with_stops_routes_back_via_proxy(self):
        ack = make_ack(3, 20, 15, ack_seq=1, echo_seq=1, ecn_echo=False,
                       ts_echo=1, stops=(10,))
        assert ack.dst == 15 and ack.stops == (10,)
