"""RTO exponential backoff: cap, blackhole survival, timer teardown."""

from dataclasses import replace

import pytest

from repro.experiments.runner import IncastScenario, run_incast
from repro.config import TransportConfig, small_interdc_config
from repro.faults import FaultContext, FaultInjector, blackhole_plan
from repro.transport.connection import Connection
from repro.transport.rtt import RttEstimator
from repro.units import kilobytes, microseconds, milliseconds, seconds
from tests.conftest import build_pair


class TestRtoCap:
    def _estimator(self):
        return RttEstimator(
            initial_rtt_ps=microseconds(100),
            min_rto_ps=microseconds(500),
            max_rto_ps=milliseconds(400),
        )

    def test_backoff_doubles_below_the_cap(self):
        rtt = self._estimator()
        raw = round(rtt.srtt + 4 * rtt.rttvar)
        backoff = 1
        while rtt.rto_ps(backoff) < rtt.max_rto:
            assert rtt.rto_ps(backoff) == max(rtt.min_rto, raw << backoff)
            backoff += 1

    def test_min_rto_floor_is_not_amplified_by_backoff(self):
        # Regression: the floor used to clamp *before* the shift, so an
        # estimator sitting below min_rto backed off from the floor itself
        # (500us, 1ms, 2ms, ...) instead of from its measured RTO.
        rtt = self._estimator()
        raw = round(rtt.srtt + 4 * rtt.rttvar)  # 300us, below the 500us floor
        assert raw < rtt.min_rto
        assert rtt.rto_ps(0) == rtt.min_rto
        assert rtt.rto_ps(1) == raw << 1  # 600us, not min_rto << 1 == 1ms
        assert rtt.rto_ps(2) == raw << 2
        # high backoff still lands exactly on the cap, never past it
        assert rtt.rto_ps(30) == rtt.max_rto

    def test_backoff_clamps_to_max_rto(self):
        rtt = self._estimator()
        assert rtt.rto_ps(20) == rtt.max_rto
        assert rtt.rto_ps(60) == rtt.max_rto  # no overflow past the cap either

    def test_cap_holds_after_samples_grow_srtt(self):
        rtt = self._estimator()
        for _ in range(8):
            rtt.on_sample(milliseconds(50))
        assert rtt.rto_ps(10) == rtt.max_rto
        assert rtt.rto_ps(0) <= rtt.max_rto


class TestBlackholeSurvival:
    def test_sender_survives_full_blackhole_window(self, sim, transport_cfg):
        # Every packet in both directions vanishes for 2ms; with unbounded
        # consecutive timeouts the sender must back off, keep probing, and
        # finish once the window lifts.
        net, a, b = build_pair(sim)
        plan = blackhole_plan(
            at_ps=microseconds(50), duration_ps=milliseconds(2),
            drop_fraction=1.0, target="receiver",
        )
        FaultInjector(sim, plan, FaultContext(net, receiver_host=b)).arm()
        # 1 MB at 10 Gbps ~ 800us of serialization: the flow is mid-flight
        # when the window opens at 50us.
        conn = Connection(net, a, b, 1_000_000, transport_cfg)
        conn.start()
        sim.run(until=seconds(1))
        assert conn.completed
        assert not conn.failed
        assert conn.sender.stats.timeouts > 0
        assert conn.sender.stats.retransmissions > 0

    def test_bounded_timeouts_fail_before_the_horizon(self):
        # A permanent blackhole with max_consecutive_timeouts=4: every flow
        # gives up after exactly four backed-off RTOs instead of pinning the
        # run to the 2s horizon.
        scenario = IncastScenario(
            degree=2,
            total_bytes=kilobytes(100),
            interdc=small_interdc_config(),
            transport=TransportConfig(max_consecutive_timeouts=4),
            horizon_ps=seconds(2),
            faults=blackhole_plan(at_ps=0, duration_ps=seconds(2), drop_fraction=1.0),
        )
        result = run_incast(scenario)
        assert not result.completed
        assert result.failed_flows == 2
        assert result.timeouts == 2 * 4
        # give-up stopped the clock: far fewer events than a horizon-pinned
        # run repeatedly retransmitting at the RTO cap for 2 simulated seconds
        capped = replace(
            scenario, transport=TransportConfig(max_consecutive_timeouts=None)
        )
        pinned = run_incast(capped)
        assert pinned.timeouts > result.timeouts
        assert pinned.events_executed > result.events_executed


class TestTeardownCancelsTimers:
    def test_pending_retransmit_timers_cancelled(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 200_000, transport_cfg)
        conn.start()
        sim.run(until=microseconds(30))  # mid-flight: RTO/TLP are armed
        assert conn.sender._rto.armed or conn.sender._tlp.armed
        conn.teardown()
        assert not conn.sender._rto.armed
        assert not conn.sender._tlp.armed
        assert not conn.receiver._delack.armed
        # the run drains without the torn-down flow ever firing a timer
        timeouts_before = conn.sender.stats.timeouts
        sim.run(until=seconds(1))
        assert conn.sender.stats.timeouts == timeouts_before
        assert not conn.completed

    def test_teardown_is_idempotent(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 10_000, transport_cfg)
        conn.start()
        sim.run(until=microseconds(10))
        conn.teardown()
        conn.teardown()
        assert not conn.sender._rto.armed
