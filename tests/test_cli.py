"""The top-level ``python -m repro`` dispatcher."""

import pytest

from repro.__main__ import main


class TestDispatch:
    def test_unknown_command_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["teleport"])
        assert "unknown command" in capsys.readouterr().err

    def test_figures_subcommand_forwards_args(self, capsys):
        main(["figures", "--only", "fig5"])
        out = capsys.readouterr().out
        assert "Figure 5a" in out

    def test_figures_accepts_parallel_flags(self, capsys, tmp_path):
        main(["figures", "--only", "fig5", "--workers", "2", "--no-cache",
              "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Figure 5a" in out

    def test_quickstart_prints_all_schemes(self, capsys):
        main(["quickstart"])
        out = capsys.readouterr().out
        for scheme in ("baseline", "naive", "streamlined", "trimless"):
            assert scheme in out
