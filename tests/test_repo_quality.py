"""Repository hygiene meta-tests: docstrings, exports, example structure."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]
SUBPACKAGES = [
    "repro.sim", "repro.net", "repro.topology", "repro.transport",
    "repro.proxy", "repro.hoststack", "repro.detection", "repro.orchestration",
    "repro.patterns", "repro.abstraction", "repro.workloads", "repro.metrics",
    "repro.experiments", "repro.analysis", "repro.telemetry",
    "repro.competitors",
]


def iter_modules():
    for package_name in ["repro", *SUBPACKAGES]:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__, package_name + "."):
            yield importlib.import_module(info.name)


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in iter_modules()
                   if not (m.__doc__ and m.__doc__.strip())]
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_classes_and_functions_are_documented(self):
        import inspect
        undocumented = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"undocumented public items: {undocumented}"


class TestExports:
    @pytest.mark.parametrize("package_name", ["repro", *SUBPACKAGES])
    def test_subpackage_all_is_importable(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.__all__ lists missing {name}"

    def test_all_lists_are_sorted(self):
        unsorted = []
        for package_name in ["repro", *SUBPACKAGES]:
            package = importlib.import_module(package_name)
            exported = list(package.__all__)
            if exported != sorted(exported):
                unsorted.append(package_name)
        assert not unsorted, f"unsorted __all__: {unsorted}"


class TestExamples:
    def examples(self):
        return sorted((REPO_ROOT / "examples").glob("*.py"))

    def test_at_least_nine_examples(self):
        assert len(self.examples()) >= 9

    def test_examples_have_docstring_and_main_guard(self):
        for path in self.examples():
            text = path.read_text()
            assert text.lstrip().startswith(('"""', "#!")), path.name
            assert 'if __name__ == "__main__":' in text, path.name

    def test_examples_reference_how_to_run(self):
        for path in self.examples():
            assert "Run:" in path.read_text(), f"{path.name} lacks a Run: line"


class TestDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                     "docs/INTERNALS.md"):
            assert (REPO_ROOT / name).exists(), name

    def test_experiments_covers_every_paper_figure(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        for anchor in ("Figure 2 (Left)", "Figure 2 (Right)", "Figure 3",
                       "Figure 4", "Figure 5a", "Figure 5b"):
            assert anchor in text, f"EXPERIMENTS.md misses {anchor}"

    def test_design_lists_the_substitutions(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        assert "htsim" in text
        assert "ConnectX-5" in text
