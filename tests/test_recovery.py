"""Controller-driven recovery across every scheme, plus the recovery sweep
(fold, digest, acceptance invariants, export)."""

from dataclasses import replace

import pytest

from repro.competitors import COMPETITOR_SCHEMES, install, uninstall
from repro.control import ControlConfig
from repro.experiments.parallel import ExperimentEngine
from repro.experiments.recovery import (
    RECOVERY_FAILOVER,
    RecoveryRow,
    build_cases,
    check_recovery,
    export_recovery,
    recovery_base_scenario,
    recovery_digest,
    recovery_sweep,
    recovery_table,
)
from repro.experiments.runner import SCHEMES, run_incast
from repro.faults.plan import FaultPlan, LinkDown, proxy_crash_plan
from repro.telemetry import RunOptions
from repro.units import microseconds


@pytest.fixture
def competitors():
    """Install the competitor schemes, and always tear them down again."""
    install()
    try:
        yield
    finally:
        uninstall()


def _linkdown_scenario(scheme):
    return replace(
        recovery_base_scenario(),
        scheme=scheme,
        control=ControlConfig(),
        faults=FaultPlan((LinkDown(microseconds(10), link="backbone:0"),)),
    )


class TestPerSchemeRecovery:
    """Every registered scheme must survive a mid-incast backbone failure
    once the controller is in the loop: the run completes, the reroute is
    counted, and packet/byte conservation holds under the sanitizer."""

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_builtin_scheme_recovers_from_linkdown(self, scheme):
        result = run_incast(
            _linkdown_scenario(scheme), options=RunOptions(sanitize=True)
        )
        assert result.completed
        assert result.failed_flows == 0
        assert result.reroutes >= 1
        assert result.converged_at_ps is not None
        assert result.converged_at_ps > microseconds(10)

    @pytest.mark.parametrize("scheme", COMPETITOR_SCHEMES)
    def test_competitor_scheme_recovers_from_linkdown(self, scheme, competitors):
        result = run_incast(
            _linkdown_scenario(scheme), options=RunOptions(sanitize=True)
        )
        assert result.completed
        assert result.failed_flows == 0
        assert result.reroutes >= 1

    def test_recovery_is_deterministic(self):
        first = run_incast(_linkdown_scenario("streamlined"))
        second = run_incast(_linkdown_scenario("streamlined"))
        assert first.ict_ps == second.ict_ps
        assert first.converged_at_ps == second.converged_at_ps

    def test_without_controller_no_reroute_is_counted(self):
        scenario = replace(_linkdown_scenario("baseline"), control=None)
        result = run_incast(scenario)
        assert result.reroutes == 0
        assert result.converged_at_ps is None


class TestCrashRecovery:
    def test_crash_with_restart_fails_back(self):
        # The pool detects the crash, migrates, and — because the primary
        # restarts and stays up past the stabilization window — wins the
        # flows back before the incast ends.
        scenario = replace(
            recovery_base_scenario(),
            scheme="proxy-failover",
            control=ControlConfig(),
            faults=proxy_crash_plan(
                at_ps=microseconds(10), restart_after_ps=microseconds(300)
            ),
        )
        result = run_incast(scenario)
        assert result.completed
        assert result.failovers == 1
        assert result.failbacks == 1
        assert result.detected_at_ps is not None
        assert microseconds(10) < result.detected_at_ps <= microseconds(110)


class TestRecoverySweep:
    _KW = dict(
        cases=build_cases(link_times_ps=(microseconds(10),), crash_times_ps=()),
        schemes=("baseline", "streamlined"),
        reps=1,
    )

    def test_digest_identical_across_worker_counts(self):
        serial = recovery_sweep(engine=ExperimentEngine(workers=1), **self._KW)
        pooled = recovery_sweep(engine=ExperimentEngine(workers=2), **self._KW)
        assert recovery_digest(serial) == recovery_digest(pooled)

    def test_fold_shape_and_inflation(self):
        rows = recovery_sweep(engine=ExperimentEngine(workers=1), **self._KW)
        assert [r.kind for r in rows] == ["control", "control", "link", "link"]
        for row in rows:
            if row.kind == "control":
                assert row.inflation is None
                assert row.reroutes == 0
            else:
                assert row.inflation is not None and row.inflation > 1.0
                assert row.reroutes >= 1
        assert check_recovery(rows) == []

    def test_table_and_export(self, tmp_path):
        rows = recovery_sweep(engine=ExperimentEngine(workers=1), **self._KW)
        table = recovery_table(rows)
        assert "linkdown@10us" in table and "baseline" in table
        paths = export_recovery(rows, tmp_path)
        assert [p.name for p in paths] == ["recovery.csv", "recovery.json"]
        csv = paths[0].read_text().splitlines()
        assert len(csv) == len(rows) + 1  # header + one line per row

    def test_check_recovery_flags_violations(self):
        def row(**overrides):
            fields = dict(
                kind="control", label="no-fault", scheme="baseline",
                fault_at_ps=0, ict_ps=1.0, inflation=None, detect_lag_ps=None,
                converge_lag_ps=None, reroutes=0.0, failovers=0.0,
                failbacks=0.0, degrades=0.0, completed=True, failures=0,
            )
            fields.update(overrides)
            return RecoveryRow(**fields)

        assert check_recovery([row()]) == []
        assert check_recovery([row(reroutes=1.0)])  # idle plane rerouted
        assert check_recovery([row(kind="link", label="linkdown@10us",
                                   completed=False)])
        assert check_recovery([
            row(kind="crash", label="crash@10us", scheme="proxy-failover",
                failovers=1.0, failbacks=0.0, detect_lag_ps=90e6)
        ])  # no fail-back counted

    def test_reps_must_be_positive(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            recovery_sweep(reps=0)

    def test_failover_timings_fit_the_incast(self):
        # The sweep's crash cell only demonstrates fail-back if detection
        # plus restart plus stabilization land inside one small incast.
        assert RECOVERY_FAILOVER.detection_timeout_ps < microseconds(300)
        assert (RECOVERY_FAILOVER.failback_stabilization_ps
                >= RECOVERY_FAILOVER.probe_interval_ps)
