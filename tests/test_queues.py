"""Queue disciplines: drop-tail, ECN marking, trimming, host priority."""

import random

import pytest

from repro.net.packet import HEADER_BYTES, make_ack, make_data
from repro.net.queues import (
    DropTailQueue,
    EcnQueue,
    EnqueueOutcome,
    HostQueue,
    TrimmingQueue,
)


def data(seq=0, payload=1000, flow=1):
    return make_data(flow, seq, 1, 2, payload_bytes=payload)


def ack(flow=1):
    return make_ack(flow, 2, 1, ack_seq=0, echo_seq=0, ecn_echo=False, ts_echo=1)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(10_000)
        packets = [data(seq=i) for i in range(3)]
        for p in packets:
            assert q.offer(p) is EnqueueOutcome.ENQUEUED
        assert [q.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_drops_when_full(self):
        q = DropTailQueue(2_200)
        assert q.offer(data()) is EnqueueOutcome.ENQUEUED
        assert q.offer(data()) is EnqueueOutcome.ENQUEUED
        assert q.offer(data()) is EnqueueOutcome.DROPPED
        assert q.stats.dropped == 1
        assert q.stats.dropped_bytes == 1064

    def test_byte_accounting(self):
        q = DropTailQueue(10_000)
        q.offer(data(payload=500))
        assert q.occupied_bytes == 500 + HEADER_BYTES
        q.pop()
        assert q.occupied_bytes == 0

    def test_pop_empty_returns_none(self):
        assert DropTailQueue(100).pop() is None

    def test_max_occupancy_tracked(self):
        q = DropTailQueue(10_000)
        q.offer(data())
        q.offer(data())
        q.pop()
        assert q.stats.max_occupied_bytes == 2 * 1064

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestEcnQueue:
    def make(self, capacity=100_000, low=2_000, high=5_000, seed=0):
        return EcnQueue(capacity, low, high, random.Random(seed))

    def test_no_marking_below_low(self):
        q = self.make()
        p1 = data()
        q.offer(p1)  # occupancy at enqueue time = 0
        assert not p1.ecn_ce

    def test_always_marks_above_high(self):
        q = self.make(low=100, high=2_000)
        for i in range(3):
            q.offer(data(seq=i))
        p = data(seq=99)
        q.offer(p)  # occupancy 3 * 1064 > high
        assert p.ecn_ce
        assert q.stats.marked >= 1

    def test_probabilistic_band_marks_some(self):
        q = self.make(capacity=10_000_000, low=1_000, high=1_000_000)
        marked = 0
        for i in range(500):
            p = data(seq=i)
            q.offer(p)
            marked += p.ecn_ce
        assert 0 < marked < 500  # linear RED band: neither none nor all

    def test_control_packets_never_marked(self):
        q = self.make(low=0, high=1)
        q.offer(data())
        a = ack()
        q.offer(a)
        assert not a.ecn_ce

    def test_still_drops_at_capacity(self):
        q = self.make(capacity=1_100)
        assert q.offer(data()) is EnqueueOutcome.ENQUEUED
        assert q.offer(data()) is EnqueueOutcome.DROPPED

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EcnQueue(1000, 500, 100, random.Random(0))


class TestTrimmingQueue:
    def make(self, capacity=3_000, low=500, high=2_000, control=10_000):
        return TrimmingQueue(capacity, low, high, random.Random(0),
                             control_capacity_bytes=control)

    def test_overflow_trims_instead_of_dropping(self):
        q = self.make(capacity=2_200)
        q.offer(data(seq=0))
        q.offer(data(seq=1))
        victim = data(seq=2)
        outcome = q.offer(victim)
        assert outcome is EnqueueOutcome.TRIMMED
        assert victim.trimmed and victim.size_bytes == HEADER_BYTES
        assert q.stats.trimmed == 1

    def test_trimmed_header_dequeued_first(self):
        q = self.make(capacity=2_200)
        q.offer(data(seq=0))
        q.offer(data(seq=1))
        q.offer(data(seq=2))  # trimmed
        first = q.pop()
        assert first.trimmed and first.seq == 2

    def test_control_lane_priority_over_data(self):
        q = self.make()
        q.offer(data(seq=0))
        q.offer(ack())
        assert q.pop().is_control

    def test_control_lane_overflow_drops(self):
        q = self.make(control=HEADER_BYTES)
        q.offer(ack())
        assert q.offer(ack()) is EnqueueOutcome.DROPPED
        assert q.stats.dropped == 1

    def test_data_marked_against_data_occupancy(self):
        q = self.make(capacity=100_000, low=100, high=1_500)
        q.offer(data(seq=0))
        q.offer(data(seq=1))
        p = data(seq=2)
        q.offer(p)  # data occupancy 2128 > high
        assert p.ecn_ce

    def test_byte_accounting_per_lane(self):
        q = self.make()
        q.offer(data())
        q.offer(ack())
        assert q.data_bytes == 1064
        assert q.control_bytes == HEADER_BYTES
        assert q.occupied_bytes == 1064 + HEADER_BYTES
        q.pop()
        q.pop()
        assert q.occupied_bytes == 0 and q.is_empty

    def test_len_counts_both_lanes(self):
        q = self.make()
        q.offer(data())
        q.offer(ack())
        assert len(q) == 2


class TestHostQueue:
    def test_control_priority_default(self):
        q = HostQueue()
        q.offer(data(seq=0))
        q.offer(ack())
        assert q.pop().is_control

    def test_priority_disabled_is_fifo(self):
        q = HostQueue(control_priority=False)
        q.offer(data(seq=0))
        q.offer(ack())
        assert not q.pop().is_control

    def test_drops_only_when_out_of_memory(self):
        q = HostQueue(capacity_bytes=1_100)
        assert q.offer(data()) is EnqueueOutcome.ENQUEUED
        assert q.offer(data()) is EnqueueOutcome.DROPPED

    def test_trimmed_data_rides_priority_lane(self):
        q = HostQueue()
        q.offer(data(seq=0))
        trimmed = data(seq=1)
        trimmed.trim()
        q.offer(trimmed)
        assert q.pop().seq == 1
