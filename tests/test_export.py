"""CSV/JSON export of experiment artifacts."""

import csv
import json

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.runner import IncastScenario
from repro.experiments.sweeps import degree_sweep
from repro.hoststack import ebpf_forward_path_pipeline, measure_pipeline
from repro.metrics.export import (
    write_cdf_csv,
    write_sweep_csv,
    write_sweep_json,
    write_timeseries_csv,
)
from repro.metrics.timeseries import TimeSeries
from repro.units import megabytes


@pytest.fixture(scope="module")
def sweep_points():
    scenario = IncastScenario(
        degree=2,
        total_bytes=megabytes(6),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    return degree_sweep(scenario, degrees=(2,), schemes=("baseline", "naive"), reps=1)


class TestSweepExport:
    def test_csv_rows(self, sweep_points, tmp_path):
        path = write_sweep_csv(sweep_points, tmp_path / "sweep.csv")
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 2  # one per scheme
        schemes = {row["scheme"] for row in rows}
        assert schemes == {"baseline", "naive"}
        for row in rows:
            assert float(row["ict_mean_ms"]) > 0
            assert row["all_completed"] == "True"

    def test_csv_reduction_blank_for_baseline(self, sweep_points, tmp_path):
        path = write_sweep_csv(sweep_points, tmp_path / "sweep.csv")
        rows = {r["scheme"]: r for r in csv.DictReader(path.open())}
        assert rows["baseline"]["reduction_vs_baseline"] == ""
        assert rows["naive"]["reduction_vs_baseline"] != ""

    def test_json_roundtrip(self, sweep_points, tmp_path):
        path = write_sweep_json(sweep_points, tmp_path / "sweep.json")
        document = json.loads(path.read_text())
        assert len(document) == 1
        assert set(document[0]["schemes"]) == {"baseline", "naive"}
        assert document[0]["schemes"]["baseline"]["reduction_vs_baseline"] is None

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_sweep_csv([], tmp_path / "x.csv")
        with pytest.raises(ExperimentError):
            write_sweep_json([], tmp_path / "x.json")

    def test_creates_parent_directories(self, sweep_points, tmp_path):
        path = write_sweep_csv(sweep_points, tmp_path / "deep" / "dir" / "s.csv")
        assert path.exists()


class TestCdfExport:
    def test_cdf_monotone_rows(self, tmp_path):
        measurement = measure_pipeline(ebpf_forward_path_pipeline(), 5000, seed=0)
        path = write_cdf_csv(measurement, tmp_path / "cdf.csv", points=50)
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 50
        latencies = [float(r["latency_us"]) for r in rows]
        probs = [float(r["cumulative_probability"]) for r in rows]
        assert latencies == sorted(latencies)
        assert probs[0] == 0.0 and probs[-1] == 1.0


class TestTimeSeriesExport:
    def test_rows_match_samples(self, tmp_path):
        series = TimeSeries("goodput", 100)
        series.observe(0, 1.5)
        series.observe(1_000_000_000, 2.5)
        path = write_timeseries_csv(series, tmp_path / "ts.csv")
        rows = list(csv.DictReader(path.open()))
        assert [float(r["time_ms"]) for r in rows] == [0.0, 1.0]
        assert [float(r["goodput"]) for r in rows] == [1.5, 2.5]
