"""Competitor scheme plug-ins: registry lifecycle, routing lanes, detection."""

import random
from types import SimpleNamespace

import pytest

from repro.competitors import COMPETITOR_SCHEMES, install, uninstall
from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError, RoutingError
from repro.experiments.runner import SCHEMES, IncastScenario, run_incast
from repro.net.routing import DisjointSprayRouting, install_disjoint_spray
from repro.patterns import (
    DETECTION_BACKENDS,
    DetectorSettings,
    DistributedIncastDetector,
    LocalIncastSketch,
    OnlineIncastDetector,
    SketchSettings,
    make_detection_backend,
)
from repro.schemes import SCHEME_REGISTRY, SchemeRegistry
from repro.units import kilobytes, microseconds, milliseconds


@pytest.fixture
def competitors():
    """Install the competitor schemes, and always tear them down again."""
    install()
    try:
        yield
    finally:
        uninstall()


def _scenario(scheme, degree=2, total_bytes=kilobytes(100)):
    return IncastScenario(
        degree=degree,
        total_bytes=total_bytes,
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
        scheme=scheme,
    )


class TestInstallLifecycle:
    def test_install_registers_all_then_uninstall_restores(self):
        before = SCHEME_REGISTRY.names()
        installed = install()
        try:
            assert installed == COMPETITOR_SCHEMES
            for name in COMPETITOR_SCHEMES:
                assert name in SCHEME_REGISTRY
        finally:
            uninstall()
        assert SCHEME_REGISTRY.names() == before == SCHEMES

    def test_install_is_idempotent(self):
        assert install() == COMPETITOR_SCHEMES
        try:
            assert install() == ()  # second call registers nothing new
        finally:
            uninstall()

    def test_install_into_private_registry_leaves_global_alone(self):
        registry = SchemeRegistry()
        assert install(registry=registry) == COMPETITOR_SCHEMES
        assert len(registry) == len(COMPETITOR_SCHEMES)
        for name in COMPETITOR_SCHEMES:
            assert name not in SCHEME_REGISTRY

    def test_uninstall_is_safe_when_not_installed(self):
        uninstall()  # no-op: unregister tolerates absent names
        assert SCHEME_REGISTRY.names() == SCHEMES


class TestDisjointSprayRouting:
    TABLES = {0: {9: [10, 11, 12, 13]}}

    def _switch(self):
        return SimpleNamespace(id=0, spray_rng=random.Random(7), routing=None)

    def test_needs_at_least_two_lanes(self):
        with pytest.raises(RoutingError):
            DisjointSprayRouting(self.TABLES, lanes=1)

    def test_assigned_flows_stay_inside_their_lane(self):
        routing = DisjointSprayRouting(self.TABLES, lanes=2)
        routing.assign_lane(1, 0)
        routing.assign_lane(2, 1)
        switch = self._switch()
        lane0 = {routing.next_hop(switch, SimpleNamespace(flow_id=1, dst=9))
                 for _ in range(64)}
        lane1 = {routing.next_hop(switch, SimpleNamespace(flow_id=2, dst=9))
                 for _ in range(64)}
        assert lane0 == {10, 12}
        assert lane1 == {11, 13}

    def test_unassigned_flows_spray_over_every_hop(self):
        routing = DisjointSprayRouting(self.TABLES, lanes=2)
        switch = self._switch()
        seen = {routing.next_hop(switch, SimpleNamespace(flow_id=3, dst=9))
                for _ in range(128)}
        assert seen == {10, 11, 12, 13}

    def test_lane_collapses_to_full_set_when_subset_empty(self):
        # One candidate hop: every lane beyond the first would be empty,
        # so the lane constraint falls back to the full option set.
        routing = DisjointSprayRouting({0: {9: [10]}}, lanes=4)
        routing.assign_lane(5, 3)
        switch = self._switch()
        assert routing.next_hop(switch, SimpleNamespace(flow_id=5, dst=9)) == 10

    def test_install_requires_finalized_network(self):
        net = SimpleNamespace(switches=[SimpleNamespace(routing=None)])
        with pytest.raises(RoutingError):
            install_disjoint_spray(net)


class TestDistributedDetector:
    def _settings(self):
        return DetectorSettings(
            window_ps=milliseconds(1),
            min_sources=3,
            min_bytes=30_000,
            cooldown_ps=milliseconds(5),
        )

    def test_sketch_counts_distinct_sources(self):
        sketch = LocalIncastSketch(SketchSettings())
        for src in (1, 2, 3, 1, 2):
            sketch.observe(microseconds(10), src, dst=9, nbytes=1000)
        bitmap, total = sketch.snapshot(microseconds(10), 9)
        assert bin(bitmap).count("1") == 3
        assert total == 5000

    def test_merged_sketches_fire_one_event(self):
        detector = DistributedIncastDetector(self._settings(), points=2)
        event = None
        # Sources land on different observation points (src % points) but
        # the merge still sees the full fan-in.
        for i, src in enumerate((1, 2, 3, 4)):
            event = detector.observe(
                microseconds(100 + i), src, dst=9, nbytes=10_000
            ) or event
        assert event is not None
        assert event.dst == 9
        assert event.sources >= 3
        assert event.window_bytes >= 30_000
        assert 9 in detector.watched_destinations()

    def test_cooldown_suppresses_refiring(self):
        detector = DistributedIncastDetector(self._settings(), points=2)
        for i, src in enumerate((1, 2, 3, 4)):
            detector.observe(microseconds(100 + i), src, dst=9, nbytes=10_000)
        assert detector.events, "setup should have fired"
        fired = len(detector.events)
        for i, src in enumerate((1, 2, 3, 4)):
            detector.observe(microseconds(200 + i), src, dst=9, nbytes=10_000)
        assert len(detector.events) == fired

    def test_backend_factory(self):
        assert set(DETECTION_BACKENDS) == {"online", "distributed"}
        assert isinstance(make_detection_backend("online"), OnlineIncastDetector)
        assert isinstance(
            make_detection_backend("distributed"), DistributedIncastDetector
        )
        with pytest.raises(ConfigError):
            make_detection_backend("bogus")


class TestCompetitorRuns:
    def test_repflow_completes_with_first_copy_wins(self, competitors):
        result = run_incast(_scenario("repflow"))
        assert result.completed
        # Two copies per flow, but the run reports one completion per flow.
        assert len(result.flow_completion_ps) == 2
        assert result.failed_flows == 0

    def test_pulser_completes_and_counts_pulses(self, competitors):
        result = run_incast(_scenario("pulser"))
        assert result.completed
        # Detection fired and each active flow got a pulse NACK, surfaced
        # through the standard proxy_nacks_sent aggregation.
        assert result.proxy_nacks_sent >= 2

    def test_pulser_dist_matches_online_pulser_here(self, competitors):
        # On this small scenario both backends see the same arrivals and
        # cross the same thresholds; the schemes must at minimum both finish.
        online = run_incast(_scenario("pulser"))
        dist = run_incast(_scenario("pulser-dist"))
        assert online.completed and dist.completed
        assert dist.proxy_nacks_sent >= 2

    def test_repflow_does_not_leak_routing_into_other_schemes(self, competitors):
        # install_disjoint_spray swaps per-switch strategies inside one run's
        # network; a fresh scenario builds a fresh network, so baseline after
        # repflow must match baseline before it.
        before = run_incast(_scenario("baseline"))
        run_incast(_scenario("repflow"))
        after = run_incast(_scenario("baseline"))
        assert after.ict_ps == before.ict_ps
