"""The figure-regeneration module (fast paths only: CDF figures + plumbing)."""

import pytest

from repro.experiments import figures
from repro.units import megabytes


class TestCdfFigures:
    def test_figure4_mentions_pipeline_and_percentiles(self):
        table = figures.figure4(packets=5_000)
        assert "userspace_naive_proxy" in table
        assert "p99" in table

    def test_figure5_has_both_panels(self):
        table = figures.figure5(packets=5_000)
        assert "Figure 5a" in table and "Figure 5b" in table
        assert "ebpf_lower_forward" in table
        assert "ebpf_lower_reverse" in table
        assert "ebpf_upper_wire_to_wire" in table


class TestScenarioPlumbing:
    def test_reduced_scenario_is_smaller(self):
        reduced = figures._base_scenario(full=False)
        full = figures._base_scenario(full=True)
        assert reduced.total_bytes < full.total_bytes
        assert full.total_bytes == megabytes(100)

    def test_reps_defaults(self):
        assert figures._reps(full=True, reps=None) == 5
        assert figures._reps(full=False, reps=None) == 2
        assert figures._reps(full=True, reps=1) == 1

    def test_anchor_keys_cover_sweeps(self):
        for name in ("Figure 2 (Left)", "Figure 2 (Right)", "Figure 3"):
            assert figures._anchor_key(name) in figures.PAPER_ANCHORS

    def test_paper_anchor_strings_quote_numbers(self):
        assert "75.67" in figures.PAPER_ANCHORS["fig2l"]
        assert "20MB" in figures.PAPER_ANCHORS["fig2r"]
        assert "100us" in figures.PAPER_ANCHORS["fig3"]
        assert "359.17" in figures.PAPER_ANCHORS["fig4"]
        assert "0.42" in figures.PAPER_ANCHORS["fig5a"]
        assert "325.92" in figures.PAPER_ANCHORS["fig5b"]


class TestCli:
    def test_cli_fig5_only(self, capsys):
        figures.main(["--only", "fig5"])
        out = capsys.readouterr().out
        assert "Figure 5a" in out
        assert "Figure 2" not in out

    def test_cli_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            figures.main(["--only", "fig99"])
