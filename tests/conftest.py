"""Shared fixtures: simulators, tiny networks, fast transport configs."""

from __future__ import annotations

import random

import pytest

from repro.config import (
    FabricConfig,
    InterDcConfig,
    QueueSpec,
    TransportConfig,
    small_interdc_config,
)
from repro.net.network import Network
from repro.net.node import Host
from repro.net.queues import HostQueue
from repro.sim.simulator import Simulator
from repro.units import gbps, kilobytes, megabytes, microseconds


@pytest.fixture()
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture()
def rng() -> random.Random:
    """A deterministic RNG for direct queue/distribution tests."""
    return random.Random(7)


@pytest.fixture()
def transport_cfg() -> TransportConfig:
    """A small-payload transport config for fast tests."""
    return TransportConfig(payload_bytes=1024)


@pytest.fixture()
def tiny_interdc() -> InterDcConfig:
    """The shrunken two-DC topology used across integration tests."""
    return small_interdc_config()


def build_pair(sim: Simulator, rate_bps: float = gbps(10), delay_ps: int = microseconds(1),
               queue_capacity: int = megabytes(1)) -> tuple[Network, Host, Host]:
    """Two hosts joined by one switch — the smallest routable network."""
    net = Network(sim)
    a = net.add_host("a")
    b = net.add_host("b")
    s = net.add_switch("s")
    switch_spec = QueueSpec(
        kind="ecn",
        capacity_bytes=queue_capacity,
        ecn_low_bytes=kilobytes(33.2),
        ecn_high_bytes=kilobytes(136.95),
    )
    host_spec = QueueSpec(kind="host", capacity_bytes=megabytes(100))
    for host in (a, b):
        net.connect(
            host, s, rate_bps, delay_ps,
            queue_ab=host_spec.build(sim.rng.stream(f"q:{host.name}")),
            queue_ba=switch_spec.build(sim.rng.stream(f"q:s->{host.name}")),
        )
    net.finalize()
    return net, a, b


def build_incast_star(
    sim: Simulator,
    senders: int,
    rate_bps: float = gbps(10),
    delay_ps: int = microseconds(1),
    bottleneck_capacity: int = kilobytes(300),
    trimming: bool = False,
) -> tuple[Network, list[Host], Host]:
    """N senders -> one switch -> one receiver, with a shallow bottleneck."""
    net = Network(sim)
    receiver = net.add_host("rx")
    s = net.add_switch("s")
    kind = "trimming" if trimming else "ecn"
    bottleneck = QueueSpec(
        kind=kind,
        capacity_bytes=bottleneck_capacity,
        ecn_low_bytes=kilobytes(33.2),
        ecn_high_bytes=min(kilobytes(136.95), bottleneck_capacity),
    )
    host_spec = QueueSpec(kind="host", capacity_bytes=megabytes(500))
    net.connect(
        receiver, s, rate_bps, delay_ps,
        queue_ab=host_spec.build(sim.rng.stream("q:rx")),
        queue_ba=bottleneck.build(sim.rng.stream("q:s->rx")),
    )
    hosts = []
    uplink = QueueSpec(
        kind=kind,
        capacity_bytes=megabytes(4),
        ecn_low_bytes=kilobytes(33.2),
        ecn_high_bytes=kilobytes(136.95),
    )
    for i in range(senders):
        h = net.add_host(f"tx{i}")
        hosts.append(h)
        net.connect(
            h, s, rate_bps, delay_ps,
            queue_ab=host_spec.build(sim.rng.stream(f"q:tx{i}")),
            queue_ba=uplink.build(sim.rng.stream(f"q:s->tx{i}")),
        )
    net.finalize()
    return net, hosts, receiver
