"""Proxy schemes: streamlined forwarding/NACK reflection, naive relay,
trimless detection, and placement."""

import pytest

from repro.config import QueueSpec, TransportConfig
from repro.detection.lossdetector import DetectorConfig
from repro.errors import ProxyError
from repro.net.network import Network
from repro.net.packet import PacketType, make_ack, make_data
from repro.proxy.naive import NaiveProxy
from repro.proxy.placement import pick_proxy_host, pick_senders
from repro.proxy.streamlined import StreamlinedProxy
from repro.proxy.trimless import TrimlessStreamlinedProxy
from repro.sim.simulator import Simulator
from repro.topology.leafspine import build_leafspine
from repro.transport.connection import Connection
from repro.units import gbps, kilobytes, megabytes, microseconds, milliseconds
from repro.config import FabricConfig


def build_line(sim, trimming=False, bottleneck=kilobytes(50)):
    """sender - switch - proxyhost - (same switch) - receiver.

    A three-host star where the proxy host sits behind a shallow
    (optionally trimming) 10G down-port, mimicking the proxy down-ToR.
    The sender and receiver links run at 40G so a bursting sender can
    actually overflow the proxy's down-port.
    """
    net = Network(sim)
    sender = net.add_host("sender")
    proxy_host = net.add_host("proxy")
    receiver = net.add_host("receiver")
    s = net.add_switch("s")
    host_spec = QueueSpec(kind="host", capacity_bytes=megabytes(200))
    kind = "trimming" if trimming else "ecn"
    down = QueueSpec(kind=kind, capacity_bytes=bottleneck,
                     ecn_low_bytes=kilobytes(10), ecn_high_bytes=kilobytes(30))
    wide = QueueSpec(kind=kind, capacity_bytes=megabytes(4),
                     ecn_low_bytes=kilobytes(33), ecn_high_bytes=kilobytes(137))
    net.connect(sender, s, gbps(40), microseconds(1),
                queue_ab=host_spec.build(None), queue_ba=wide.build(sim.rng.stream("q1")))
    net.connect(proxy_host, s, gbps(10), microseconds(1),
                queue_ab=host_spec.build(None), queue_ba=down.build(sim.rng.stream("q2")))
    net.connect(receiver, s, gbps(40), milliseconds(1),
                queue_ab=host_spec.build(None), queue_ba=wide.build(sim.rng.stream("q3")))
    net.finalize()
    return net, sender, proxy_host, receiver


class TestStreamlinedProxy:
    def test_relays_end_to_end(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = StreamlinedProxy(sim, proxy_host)
        conn = Connection(net, sender, receiver, 20_000, transport_cfg,
                          via=(proxy_host,))
        proxy.attach(conn)
        conn.start()
        sim.run(until=milliseconds(200))
        assert conn.completed
        assert proxy.stats.data_forwarded >= conn.total_packets
        assert proxy.stats.control_forwarded >= conn.total_packets  # the ACKs

    def test_trimmed_header_becomes_nack(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim, trimming=True)
        proxy = StreamlinedProxy(sim, proxy_host)
        conn = Connection(net, sender, receiver, 200_000, transport_cfg,
                          via=(proxy_host,))
        proxy.attach(conn)
        # Fatten the initial window so the shallow proxy down-port overflows.
        conn.cc.cwnd = conn.total_packets
        conn.start()
        sim.run(until=milliseconds(500))
        assert conn.completed
        assert proxy.stats.trimmed_absorbed > 0
        assert proxy.stats.nacks_sent == proxy.stats.trimmed_absorbed
        assert conn.sender.stats.nacks_received > 0
        # trimmed headers are absorbed, never forwarded to the receiver
        assert conn.receiver.stats.trimmed_headers == 0

    def test_nack_feedback_is_local_not_end_to_end(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim, trimming=True)
        proxy = StreamlinedProxy(sim, proxy_host)
        conn = Connection(net, sender, receiver, 200_000, transport_cfg,
                          via=(proxy_host,))
        proxy.attach(conn)
        conn.cc.cwnd = conn.total_packets
        nack_times = []
        original = conn.sender._on_nack
        def spy(packet):
            nack_times.append(sim.now)
            original(packet)
        conn.sender._on_nack = spy
        conn.start()
        sim.run(until=milliseconds(500))
        # First NACK arrives on the intra-DC timescale (well below the 2ms
        # one-way long-haul latency), which is the paper's entire point.
        assert nack_times and nack_times[0] < milliseconds(1)

    def test_processing_delay_is_charged(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        slow = StreamlinedProxy(sim, proxy_host, processing_delay=lambda: microseconds(400))
        conn = Connection(net, sender, receiver, 4096, transport_cfg, via=(proxy_host,))
        slow.attach(conn)
        conn.start()
        sim.run(until=milliseconds(300))
        done_slow = conn.receiver.stats.completed_at

        sim2 = Simulator(seed=42)
        net2, sender2, proxy_host2, receiver2 = build_line(sim2)
        fast = StreamlinedProxy(sim2, proxy_host2)
        conn2 = Connection(net2, sender2, receiver2, 4096, transport_cfg, via=(proxy_host2,))
        fast.attach(conn2)
        conn2.start()
        sim2.run(until=milliseconds(300))
        done_fast = conn2.receiver.stats.completed_at
        # receiver completion is gated by the forward direction only: the
        # last data packet crosses the proxy exactly once.
        assert done_slow - done_fast >= microseconds(400)

    def test_packet_without_stops_is_a_wiring_error(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = StreamlinedProxy(sim, proxy_host)
        proxy.attach_flow(77)
        stray = make_data(77, 0, sender.id, proxy_host.id, payload_bytes=10)
        with pytest.raises(ProxyError):
            proxy._handle(stray)

    def test_detach_stops_relaying(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = StreamlinedProxy(sim, proxy_host)
        proxy.attach_flow(5)
        proxy.detach_flow(5)
        assert 5 not in proxy_host.handlers


class TestNaiveProxy:
    def test_relays_and_completes(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        done = []
        flow = proxy.relay(sender, receiver, 50_000,
                           on_receiver_complete=lambda r: done.append(sim.now))
        flow.start()
        sim.run(until=milliseconds(200))
        assert flow.completed
        assert done
        assert flow.outer.receiver.stats.bytes_received == 50_000

    def test_relay_preserves_byte_stream_order(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        flow = proxy.relay(sender, receiver, 30_000)
        seqs = []
        inner_deliver = flow.inner.receiver.on_deliver
        flow.inner.receiver.on_deliver = lambda seq: (seqs.append(seq), inner_deliver(seq))
        flow.start()
        sim.run(until=milliseconds(200))
        assert seqs == sorted(seqs)

    def test_two_connections_with_distinct_flow_ids(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        flow = proxy.relay(sender, receiver, 10_000)
        assert flow.inner.flow_id != flow.outer.flow_id
        # inner terminates at the proxy host; outer originates there
        assert flow.inner.dst is proxy_host
        assert flow.outer.src is proxy_host

    def test_long_leg_is_unwindowed(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        flow = proxy.relay(sender, receiver, 10_000)
        assert flow.outer.cc.can_send(10**9)

    def test_backlog_drains(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        flow = proxy.relay(sender, receiver, 50_000)
        flow.start()
        sim.run(until=milliseconds(200))
        assert flow.relay_backlog_packets == 0

    def test_inner_leg_finishes_before_outer(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = NaiveProxy(net, proxy_host, transport_cfg)
        flow = proxy.relay(sender, receiver, 50_000)
        flow.start()
        sim.run(until=milliseconds(200))
        # the local leg has a us RTT; the long leg's completion includes 1ms legs
        assert (flow.inner.receiver.stats.completed_at
                < flow.outer.receiver.stats.completed_at)


class TestTrimlessProxy:
    def test_detects_drops_and_nacks(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim, trimming=False,
                                                       bottleneck=kilobytes(30))
        proxy = TrimlessStreamlinedProxy(
            sim, proxy_host,
            DetectorConfig(packet_threshold=4, reorder_window_ps=microseconds(10)),
        )
        conn = Connection(net, sender, receiver, 200_000, transport_cfg,
                          via=(proxy_host,))
        proxy.attach(conn)
        conn.cc.cwnd = conn.total_packets  # force first-burst overflow
        conn.start()
        sim.run(until=milliseconds(1000))
        assert conn.completed
        assert proxy.stats.nacks_sent > 0
        assert conn.sender.stats.nacks_received > 0

    def test_no_false_nacks_without_loss(self, sim, transport_cfg):
        net, sender, proxy_host, receiver = build_line(sim, bottleneck=megabytes(4))
        proxy = TrimlessStreamlinedProxy(sim, proxy_host)
        conn = Connection(net, sender, receiver, 50_000, transport_cfg,
                          via=(proxy_host,))
        proxy.attach(conn)
        conn.start()
        sim.run(until=milliseconds(200))
        assert conn.completed
        assert proxy.stats.nacks_sent == 0

    def test_detach_cleans_state(self, sim):
        net, sender, proxy_host, receiver = build_line(sim)
        proxy = TrimlessStreamlinedProxy(sim, proxy_host)
        proxy.attach_flow(9)
        proxy.detach_flow(9)
        assert 9 not in proxy_host.handlers
        assert len(proxy.detector) == 0


class TestPlacement:
    def _fabric(self, sim, leaves=4, servers=4):
        net = Network(sim)
        return build_leafspine(
            net, FabricConfig(spines=2, leaves=leaves, servers_per_leaf=servers)
        )

    def test_senders_round_robin_across_leaves(self, sim):
        fabric = self._fabric(sim)
        senders = pick_senders(fabric, 4)
        leaves = [h.name.split("h")[1].split(".")[0] for h in senders]
        assert len(set(leaves)) == 4  # one sender per leaf

    def test_senders_wrap_within_leaves(self, sim):
        fabric = self._fabric(sim)
        senders = pick_senders(fabric, 6)
        assert len(senders) == 6
        assert len({h.id for h in senders}) == 6

    def test_exclusion_respected(self, sim):
        fabric = self._fabric(sim)
        excluded = {fabric.hosts_by_leaf[0][0].id}
        senders = pick_senders(fabric, 4, exclude=excluded)
        assert excluded.isdisjoint({h.id for h in senders})

    def test_proxy_avoids_sender_leaves(self, sim):
        fabric = self._fabric(sim)
        senders = pick_senders(fabric, 4)  # one per leaf, rank 0
        proxy = pick_proxy_host(fabric, senders)
        assert proxy.id not in {h.id for h in senders}

    def test_proxy_prefers_emptiest_leaf(self, sim):
        fabric = self._fabric(sim)
        # load leaves 0..2 heavily, keep leaf 3 sender-free
        senders = [h for leaf in fabric.hosts_by_leaf[:3] for h in leaf]
        proxy = pick_proxy_host(fabric, senders)
        assert proxy in fabric.hosts_by_leaf[3]

    def test_too_many_senders_raises(self, sim):
        fabric = self._fabric(sim, leaves=1, servers=2)
        from repro.errors import TopologyError
        with pytest.raises(TopologyError):
            pick_senders(fabric, 5)
