"""Topology builders: leaf-spine fabric and the two-DC backbone."""

import pytest

from repro.config import FabricConfig, InterDcConfig, paper_interdc_config, small_interdc_config
from repro.errors import ConfigError
from repro.net.network import Network
from repro.net.queues import EcnQueue, HostQueue, TrimmingQueue
from repro.sim.simulator import Simulator
from repro.topology.interdc import build_interdc
from repro.topology.leafspine import build_leafspine
from repro.units import megabytes, microseconds, milliseconds


@pytest.fixture()
def small_topo(sim):
    return build_interdc(sim, small_interdc_config())


class TestLeafSpine:
    def test_element_counts(self, sim):
        net = Network(sim)
        cfg = FabricConfig(spines=2, leaves=3, servers_per_leaf=4)
        fabric = build_leafspine(net, cfg)
        assert len(fabric.spines) == 2
        assert len(fabric.leaves) == 3
        assert len(fabric.hosts) == 12
        assert [len(hosts) for hosts in fabric.hosts_by_leaf] == [4, 4, 4]

    def test_full_bipartite_leaf_spine(self, sim):
        net = Network(sim)
        fabric = build_leafspine(net, FabricConfig(spines=2, leaves=2, servers_per_leaf=1))
        for leaf in fabric.leaves:
            spine_neighbors = [n for n in net.adjacency[leaf.id]
                               if any(s.id == n for s in fabric.spines)]
            assert len(spine_neighbors) == 2

    def test_down_tor_port_uses_switch_queue(self, sim):
        net = Network(sim)
        fabric = build_leafspine(net, FabricConfig(spines=1, leaves=1, servers_per_leaf=1))
        host = fabric.hosts[0]
        leaf = fabric.leaves[0]
        assert isinstance(leaf.ports[host.id].queue, EcnQueue)
        assert isinstance(host.ports[leaf.id].queue, HostQueue)

    def test_trimming_flag_swaps_queue_type(self, sim):
        net = Network(sim)
        fabric = build_leafspine(
            net, FabricConfig(spines=1, leaves=1, servers_per_leaf=1), trimming=True
        )
        leaf = fabric.leaves[0]
        host = fabric.hosts[0]
        assert isinstance(leaf.ports[host.id].queue, TrimmingQueue)


class TestInterDc:
    def test_paper_scale_counts(self, sim):
        topo = build_interdc(sim, paper_interdc_config())
        assert len(topo.backbone) == 64
        for fabric in topo.fabrics:
            assert len(fabric.spines) == 8
            assert len(fabric.leaves) == 8
            assert len(fabric.hosts) == 64
        # every spine has 8 backbone links
        for fabric in topo.fabrics:
            for spine in fabric.spines:
                bb_neighbors = [n for n in topo.net.adjacency[spine.id]
                                if topo.net.nodes[n].dc == -1]
                assert len(bb_neighbors) == 8
        # every backbone router bridges exactly one spine per DC
        for router in topo.backbone:
            assert len(topo.net.adjacency[router.id]) == 2

    def test_cross_dc_rtt_matches_paper(self, sim):
        topo = build_interdc(sim, paper_interdc_config())
        src = topo.hosts(0)[0]
        dst = topo.hosts(1)[0]
        rtt = topo.net.path_rtt_ps(src.id, dst.id)
        # 2 intra hops + 1ms + 1ms + 2 intra hops, each way.
        assert rtt == 2 * (2 * milliseconds(1) + 4 * microseconds(1))

    def test_intra_dc_rtt_is_microseconds(self, small_topo):
        hosts = small_topo.hosts(0)
        rtt = small_topo.net.path_rtt_ps(hosts[0].id, hosts[1].id)
        assert rtt <= 10 * microseconds(1)

    def test_backbone_ports_use_deep_buffers(self, small_topo):
        cfg = small_topo.cfg
        router = small_topo.backbone[0]
        port = next(iter(router.ports.values()))
        assert port.queue.capacity_bytes == cfg.backbone_queue.capacity_bytes

    def test_trimming_config_propagates(self, sim):
        topo = build_interdc(sim, small_interdc_config().with_trimming(True))
        leaf = topo.fabrics[0].leaves[0]
        host = topo.fabrics[0].hosts[0]
        assert isinstance(leaf.ports[host.id].queue, TrimmingQueue)

    def test_with_backbone_delay_derives_config(self):
        cfg = small_interdc_config().with_backbone_delay(milliseconds(10))
        assert cfg.backbone_delay_ps == milliseconds(10)
        # original is untouched (frozen dataclasses)
        assert small_interdc_config().backbone_delay_ps == milliseconds(1)

    def test_all_cross_dc_pairs_routable(self, small_topo):
        net = small_topo.net
        for src in small_topo.hosts(0)[:2]:
            for dst in small_topo.hosts(1)[:2]:
                assert net.min_delay_ps(src.id, dst.id) > 0


class TestConfigValidation:
    def test_backbone_dimension_mismatch(self):
        with pytest.raises(ConfigError):
            InterDcConfig(backbone_routers=10, backbone_per_spine=8)

    def test_queue_spec_threshold_order(self):
        from repro.config import QueueSpec
        with pytest.raises(ConfigError):
            QueueSpec(kind="ecn", capacity_bytes=100, ecn_low_bytes=90, ecn_high_bytes=10)

    def test_queue_spec_unknown_kind(self):
        from repro.config import QueueSpec
        with pytest.raises(ConfigError):
            QueueSpec(kind="magic", capacity_bytes=100)

    def test_paper_preset_buffer_sizes(self):
        cfg = paper_interdc_config()
        assert cfg.fabric.switch_queue.capacity_bytes == megabytes(17.015)
        assert cfg.fabric.switch_queue.ecn_low_bytes == 33_200
        assert cfg.fabric.switch_queue.ecn_high_bytes == 136_950
        assert cfg.backbone_queue.capacity_bytes == megabytes(49.8)
        assert cfg.backbone_queue.ecn_low_bytes == megabytes(9.96)
        assert cfg.backbone_queue.ecn_high_bytes == megabytes(39.84)

    def test_transport_validation(self):
        from repro.config import TransportConfig
        with pytest.raises(ConfigError):
            TransportConfig(payload_bytes=0)
        with pytest.raises(ConfigError):
            TransportConfig(cc="warp")
        with pytest.raises(ConfigError):
            TransportConfig(dctcp_gain=0)
        with pytest.raises(ConfigError):
            TransportConfig(nack_cut_factor=1.0)
