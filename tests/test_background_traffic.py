"""Incast behaviour with background cross-traffic on the fabric."""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.runner import IncastScenario, run_incast
from repro.units import megabytes


@pytest.fixture(scope="module")
def busy_scenario():
    return IncastScenario(
        degree=4,
        total_bytes=megabytes(16),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
        background_flows=4,
        background_bytes=megabytes(20),
    )


class TestBackgroundTraffic:
    def test_incast_completes_on_busy_fabric(self, busy_scenario):
        result = run_incast(busy_scenario)
        assert result.completed

    def test_background_actually_transmits(self, busy_scenario):
        quiet = run_incast(replace(busy_scenario, background_flows=0))
        busy = run_incast(busy_scenario)
        assert busy.counters.tx_bytes > quiet.counters.tx_bytes + megabytes(10)

    def test_proxy_still_wins_under_cross_traffic(self, busy_scenario):
        baseline = run_incast(busy_scenario)
        proxied = run_incast(replace(busy_scenario, scheme="streamlined"))
        assert proxied.ict_ps < 0.5 * baseline.ict_ps

    def test_background_never_blocks_completion_accounting(self, busy_scenario):
        # background flows are not part of the incast: completion fires on
        # the incast's own flows even though background data is still moving
        result = run_incast(busy_scenario)
        assert len(result.flow_completion_ps) == busy_scenario.degree

    def test_validation(self):
        with pytest.raises(ExperimentError):
            IncastScenario(background_flows=-1)
        with pytest.raises(ExperimentError):
            IncastScenario(background_bytes=0)

    def test_deterministic_with_background(self, busy_scenario):
        a = run_incast(busy_scenario)
        b = run_incast(busy_scenario)
        assert a.ict_ps == b.ict_ps
