"""RunOptions bundle, the removed ``sanitize=`` kwarg, and the shared CLI."""

import dataclasses
import warnings
from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError
from repro.experiments.parallel import ExperimentEngine, ResultCache
from repro.experiments.runner import IncastScenario, run_incast
from repro.sim.tracing import RecordingTracer
from repro.telemetry import RunOptions
from repro.units import kilobytes


def _scenario(**overrides):
    base = IncastScenario(
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    return replace(base, **overrides) if overrides else base


class TestRunOptions:
    def test_frozen_and_validated(self):
        options = RunOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.sanitize = True
        with pytest.raises(ConfigError):
            RunOptions(sample_interval_ps=0)
        with pytest.raises(ConfigError):
            RunOptions(max_samples=0)

    def test_cache_bypass_matrix(self):
        assert not RunOptions().bypasses_cache
        assert RunOptions(sanitize=True).bypasses_cache
        assert RunOptions(telemetry=True).bypasses_cache
        assert RunOptions(tracer=RecordingTracer()).bypasses_cache

    def test_options_path_sanitizes_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = run_incast(_scenario(), options=RunOptions(sanitize=True))
        assert result.conservation is not None

    def test_removed_sanitize_kwarg_raises(self):
        with pytest.raises(TypeError, match="RunOptions"):
            run_incast(_scenario(), sanitize=True)

    def test_removed_kwarg_raises_even_with_explicit_options(self):
        with pytest.raises(TypeError, match="RunOptions"):
            run_incast(
                _scenario(), options=RunOptions(telemetry=True), sanitize=True
            )

    def test_tracer_option_reaches_the_simulator(self):
        from repro.faults.plan import blackhole_plan
        from repro.units import milliseconds

        tracer = RecordingTracer(kinds={"blackhole"})
        scenario = _scenario(faults=blackhole_plan(
            at_ps=0, duration_ps=milliseconds(5), drop_fraction=0.5,
            target="backbone",
        ))
        run_incast(scenario, options=RunOptions(tracer=tracer))
        assert tracer.of_kind("blackhole")


class TestEngineOptions:
    def test_engine_threads_options_through(self):
        engine = ExperimentEngine(
            workers=1, options=RunOptions(telemetry=True)
        )
        [result] = engine.run_incasts([_scenario()])
        assert result.telemetry is not None

    def test_removed_engine_sanitize_kwarg_raises(self):
        with pytest.raises(TypeError, match="RunOptions"):
            ExperimentEngine(workers=1, sanitize=True)
        engine = ExperimentEngine(workers=1, options=RunOptions(sanitize=True))
        assert engine.sanitize is True
        with pytest.raises(AttributeError):
            engine.sanitize = False  # read-only property over options

    def test_telemetry_options_bypass_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        scenario = _scenario()
        ExperimentEngine(workers=1, cache=cache).run_incasts([scenario])
        engine = ExperimentEngine(
            workers=1, cache=cache, options=RunOptions(telemetry=True)
        )
        [result] = engine.run_incasts([scenario])
        assert not result.from_cache
        assert result.telemetry is not None
        assert engine.stats.cache_hits == 0


class TestSharedCli:
    def test_version_flag(self, capsys):
        from repro import __version__
        from repro.__main__ import main

        main(["--version"])
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_common_parser_accepts_the_shared_flags(self):
        import argparse

        from repro.__main__ import common_parser, options_from_args

        parser = argparse.ArgumentParser(parents=[common_parser()])
        args = parser.parse_args(
            ["--workers", "2", "--no-cache", "--sanitize", "--seed", "7",
             "--telemetry", "--sample-interval", "2.5"]
        )
        assert (args.workers, args.no_cache, args.seed) == (2, True, 7)
        options = options_from_args(args)
        assert options.sanitize and options.telemetry
        assert options.sample_interval_ps == 2_500_000

    def test_check_common_args_rejects_bad_values(self, capsys):
        import argparse

        from repro.__main__ import check_common_args, common_parser

        parser = argparse.ArgumentParser(parents=[common_parser()])
        for flags in (["--workers", "-1"], ["--run-timeout", "0"],
                      ["--sample-interval", "0"]):
            with pytest.raises(SystemExit):
                check_common_args(parser, parser.parse_args(flags))
        capsys.readouterr()

    @pytest.mark.parametrize("module", [
        "repro.experiments.figures", "repro.experiments.faultsweep",
    ])
    def test_sweep_clis_expose_the_shared_flags(self, module, capsys):
        import importlib

        main = importlib.import_module(module).main
        with pytest.raises(SystemExit):
            main(["--help"])
        text = capsys.readouterr().out
        for flag in ("--workers", "--no-cache", "--cache-dir", "--sanitize",
                     "--seed", "--telemetry", "--telemetry-dir",
                     "--sample-interval"):
            assert flag in text, flag
