"""Property-based state-machine test of the sender's bookkeeping.

Drives a :class:`WindowedSender` against a scripted network: hypothesis
chooses an arbitrary interleaving of ACKs (in any order, cumulative or
not), NACKs (valid and duplicate), and timer firings, and after every step
the sender's accounting invariants must hold:

* ``pipe`` equals the number of sequences in the INFLIGHT state and is
  never negative;
* a sequence is never ACKed *and* pending retransmission at pop time;
* the sender completes exactly when the receiver's cumulative ack covers
  the flow, and never "un-completes";
* every payload byte handed to the network belongs to the flow exactly
  (no sequence above ``total_packets``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TransportConfig
from repro.net.packet import make_ack, make_nack
from repro.sim.simulator import Simulator
from repro.transport.connection import make_congestion_control
from repro.transport.rtt import RttEstimator
from repro.transport.sender import WindowedSender
from repro.units import microseconds, milliseconds


class ScriptedHost:
    """Stands in for a Host: records transmissions, never delivers."""

    def __init__(self) -> None:
        self.id = 1
        self.sent = []  # packets in transmission order
        self.nic_rate_bps = 100e9

    def send(self, packet) -> None:
        self.sent.append(packet)


def make_sender(total_packets=24, cwnd=6.0):
    sim = Simulator(seed=0)
    host = ScriptedHost()
    cfg = TransportConfig(payload_bytes=1000, min_rto_ps=milliseconds(1))
    cc = make_congestion_control(cfg, cwnd)
    rtt = RttEstimator(microseconds(100), milliseconds(1), milliseconds(400))
    sender = WindowedSender(
        sim, host, 7, 2, total_packets, total_packets * 1000, cfg, cc, rtt
    )
    return sim, host, sender


def check_invariants(sender):
    inflight = sum(1 for state in sender._state.values() if state == 0)
    assert sender.pipe == inflight, "pipe must equal INFLIGHT count"
    assert sender.pipe >= 0
    assert all(0 <= seq < sender.total_packets for seq in sender._state)
    if sender.completed:
        assert sender.cum_ack >= sender.total_packets


@st.composite
def event_scripts(draw):
    """A random interleaving of network feedback events."""
    total = draw(st.integers(min_value=4, max_value=32))
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["ack", "cumack", "nack", "rto", "dup_nack"]),
                st.integers(min_value=0, max_value=total - 1),
            ),
            min_size=1,
            max_size=80,
        )
    )
    return total, steps


class TestSenderStateMachine:
    @settings(deadline=None, max_examples=120)
    @given(event_scripts())
    def test_bookkeeping_invariants_under_arbitrary_feedback(self, script):
        total, steps = script
        sim, host, sender = make_sender(total_packets=total, cwnd=total / 3)
        sender.start()
        check_invariants(sender)
        now = [microseconds(10)]

        def at(fn):
            now[0] += microseconds(10)
            sim.schedule_at(now[0], fn)
            sim.run(until=now[0])

        for kind, seq in steps:
            if sender.completed:
                break
            if kind in ("ack", "cumack"):
                sent_copy = next(
                    (p for p in host.sent if p.seq == seq), None
                )
                ts_echo = sent_copy.ts if sent_copy is not None else now[0]
                cum = (
                    max(sender.cum_ack, seq + 1) if kind == "cumack"
                    else sender.cum_ack
                )
                ack = make_ack(7, 2, 1, ack_seq=cum, echo_seq=seq,
                               ecn_echo=(seq % 3 == 0), ts_echo=ts_echo)
                at(lambda ack=ack: sender.on_packet(ack))
            elif kind in ("nack", "dup_nack"):
                nack = make_nack(7, seq, 2, 1, ts_echo=now[0] - microseconds(5))
                at(lambda nack=nack: sender.on_packet(nack))
                if kind == "dup_nack":
                    at(lambda nack=nack: sender.on_packet(nack))
            else:  # rto
                at(sender._on_rto)
            check_invariants(sender)

        # Drain: cumulatively ack everything; the sender must finish cleanly.
        final = make_ack(7, 2, 1, ack_seq=total, echo_seq=total - 1,
                         ecn_echo=False, ts_echo=now[0])
        at(lambda: sender.on_packet(final))
        assert sender.completed
        check_invariants(sender)
        assert sender.stats.completed_at is not None

    @settings(deadline=None, max_examples=40)
    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64))
    def test_transmissions_never_exceed_window_or_flow(self, total, cwnd):
        sim, host, sender = make_sender(total_packets=total, cwnd=float(cwnd))
        sender.start()
        assert len(host.sent) == min(total, cwnd)
        assert {p.seq for p in host.sent} == set(range(min(total, cwnd)))
