"""The determinism linter: rule catalogue, suppressions, CLI exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import lint_file, lint_paths, main
from repro.analysis.rules import RULES, rule_names
from repro.errors import LintError

REPO_ROOT = Path(__file__).resolve().parents[1]
BAD_EXAMPLE = Path(__file__).resolve().parent / "fixtures" / "lint_bad_example.py"


def lint_source(tmp_path: Path, source: str, name: str = "snippet.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, tmp_path)


class TestBadExampleFixture:
    def test_every_rule_fires_on_the_fixture(self):
        violations = lint_file(BAD_EXAMPLE, REPO_ROOT)
        assert {v.rule for v in violations} == set(rule_names())

    def test_cli_exits_nonzero_on_the_fixture(self, capsys):
        assert main([str(BAD_EXAMPLE)]) == 1
        out = capsys.readouterr().out
        assert "lint_bad_example.py" in out
        assert "violation(s)" in out


class TestRepoIsClean:
    def test_default_targets_have_no_violations(self):
        violations = lint_paths(root=REPO_ROOT)
        assert violations == [], "\n".join(v.render() for v in violations)


class TestRuleFindings:
    """Each rule fires on a minimal bad snippet and stays quiet on clean code."""

    @pytest.mark.parametrize(
        "rule,source",
        [
            ("raw-random", "import random\n"),
            ("raw-random", "from random import choice\n"),
            ("raw-random", "rng = Random()\n"),
            ("wall-clock", "import time\nt = time.time()\n"),
            ("wall-clock", "from time import sleep\n"),
            ("wall-clock", "import datetime\nd = datetime.datetime.now()\n"),
            ("set-iteration", "for x in {1, 2}:\n    pass\n"),
            ("set-iteration", "s = set()\nfor x in s:\n    pass\n"),
            ("set-iteration", "out = [x for x in frozenset((1, 2))]\n"),
            ("id-key", "key = id(obj)\n"),
            ("mutable-default", "def f(a=[]):\n    pass\n"),
            ("mutable-default", "def f(*, a={}):\n    pass\n"),
            ("mutable-default", "def f(a=set()):\n    pass\n"),
            ("float-eq", "ok = x == 1.0\n"),
            ("float-eq", "ok = 0.5 != x\n"),
        ],
    )
    def test_rule_fires(self, tmp_path, rule, source):
        assert rule in {v.rule for v in lint_source(tmp_path, source)}

    @pytest.mark.parametrize(
        "source",
        [
            "from repro.sim.rng import SimRandom, derive_stream\n",
            "rng = Random(42)\n",
            "import time\n",  # the import alone is fine; calls are flagged
            "s = set()\nfor x in sorted(s):\n    pass\n",
            "for x in [1, 2]:\n    pass\n",
            "def f(a=None, b=()):\n    pass\n",
            "ok = x == 1\n",
            "y = 2.0 * x\n",
        ],
    )
    def test_clean_code_is_quiet(self, tmp_path, source):
        assert lint_source(tmp_path, source) == []

    def test_scope_exclusions_apply(self, tmp_path):
        # The experiment harness legitimately measures wall time.
        source = "import time\nt = time.time()\n"
        violations = lint_source(
            tmp_path, source, name="src/repro/experiments/harness.py"
        )
        assert "wall-clock" not in {v.rule for v in violations}

    def test_rng_module_may_import_random(self, tmp_path):
        violations = lint_source(
            tmp_path, "import random\n", name="src/repro/sim/rng.py"
        )
        assert violations == []


class TestSuppressions:
    def test_same_line_comment_suppresses(self, tmp_path):
        source = "for x in {1, 2}:  # repro: allow[set-iteration] order-free\n    pass\n"
        assert lint_source(tmp_path, source) == []

    def test_line_above_suppresses_multiline_statements(self, tmp_path):
        source = (
            "total = sum(  # repro: allow[set-iteration] order-free count\n"
            "    1 for x in {1, 2}\n"
            ")\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_wildcard_suppresses_every_rule(self, tmp_path):
        source = "k = id(x) if y == 1.0 else 0  # repro: allow[*] test scaffolding\n"
        assert lint_source(tmp_path, source) == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        source = "key = id(x)  # repro: allow[float-eq] mislabeled\n"
        assert {v.rule for v in lint_source(tmp_path, source)} == {"id-key"}

    def test_comment_does_not_leak_two_lines_down(self, tmp_path):
        source = (
            "pass  # repro: allow[id-key]\n"
            "pass\n"
            "key = id(x)\n"
        )
        assert {v.rule for v in lint_source(tmp_path, source)} == {"id-key"}

    def test_comment_above_decorator_covers_the_signature(self, tmp_path):
        # A mutable-default violation anchors at the `def` line, but the
        # only place a human can hang the comment is above the decorator.
        source = (
            "# repro: allow[mutable-default] shared scratch, test-only\n"
            "@wraps(inner)\n"
            "@retry(3)\n"
            "def f(a=[]):\n"
            "    pass\n"
        )
        assert lint_source(tmp_path, source) == []

    def test_decorator_comment_does_not_cover_the_body(self, tmp_path):
        source = (
            "# repro: allow[id-key]\n"
            "@wraps(inner)\n"
            "def f(a):\n"
            "    return id(a)\n"
        )
        assert {v.rule for v in lint_source(tmp_path, source)} == {"id-key"}


class TestCli:
    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2
        assert "lint error" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Clean."""\n')
        assert main([str(clean)]) == 0

    def test_non_python_target_exits_two(self, tmp_path):
        other = tmp_path / "notes.txt"
        other.write_text("hello")
        assert main([str(other)]) == 2

    def test_json_format_emits_machine_readable_records(self, capsys):
        assert main(["--format=json", str(BAD_EXAMPLE)]) == 1
        records = json.loads(capsys.readouterr().out)
        assert records, "expected findings on the bad-example fixture"
        assert {r["rule"] for r in records} == set(rule_names())
        for record in records:
            assert set(record) == {"rule", "path", "line", "message"}
            assert record["path"].endswith("lint_bad_example.py")
            assert isinstance(record["line"], int) and record["line"] > 0

    def test_json_format_empty_list_when_clean(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Clean."""\n')
        assert main(["--format=json", str(clean)]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_github_format_emits_error_annotations(self, capsys):
        assert main(["--format=github", str(BAD_EXAMPLE)]) == 1
        lines = capsys.readouterr().out.splitlines()
        assert lines and all(l.startswith("::error file=") for l in lines)
        assert any(",title=pool-leak-path::" in l for l in lines)

    def test_github_format_silent_when_clean(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Clean."""\n')
        assert main(["--format=github", str(clean)]) == 0
        assert capsys.readouterr().out == ""


class TestRegistry:
    def test_rule_names_are_unique(self):
        names = rule_names()
        assert len(names) == len(set(names))
        assert len(names) == len(RULES)

    def test_unreadable_path_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            lint_file(tmp_path / "missing.py", tmp_path)
