"""Incast pattern detection and periodic prediction."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.patterns import (
    DetectorSettings,
    OnlineIncastDetector,
    PeriodicIncastPredictor,
)
from repro.units import microseconds, milliseconds


class TestOnlineDetector:
    def settings(self, **kw):
        defaults = dict(window_ps=milliseconds(1), min_sources=3,
                        min_bytes=1000, cooldown_ps=milliseconds(5))
        defaults.update(kw)
        return DetectorSettings(**defaults)

    def test_fires_when_fan_in_crosses_threshold(self):
        det = OnlineIncastDetector(self.settings())
        t = microseconds(1)
        assert det.observe(t, src=1, dst=9, nbytes=500) is None
        assert det.observe(t + 1, src=2, dst=9, nbytes=500) is None
        event = det.observe(t + 2, src=3, dst=9, nbytes=500)
        assert event is not None
        assert event.dst == 9 and event.sources == 3
        assert event.window_bytes == 1500

    def test_byte_threshold_also_required(self):
        det = OnlineIncastDetector(self.settings(min_bytes=10_000))
        t = microseconds(1)
        for src in range(5):
            assert det.observe(t + src, src=src, dst=9, nbytes=10) is None

    def test_same_source_does_not_count_twice(self):
        det = OnlineIncastDetector(self.settings())
        t = microseconds(1)
        for i in range(10):
            event = det.observe(t + i, src=1, dst=9, nbytes=500)
        assert event is None

    def test_window_expires_old_observations(self):
        det = OnlineIncastDetector(self.settings())
        det.observe(0, src=1, dst=9, nbytes=500)
        det.observe(1, src=2, dst=9, nbytes=500)
        # the third source arrives after the window slid past the first two
        event = det.observe(milliseconds(10), src=3, dst=9, nbytes=500)
        assert event is None

    def test_cooldown_suppresses_repeat_alarms(self):
        det = OnlineIncastDetector(self.settings())
        t = microseconds(1)
        for src in range(3):
            det.observe(t + src, src=src, dst=9, nbytes=500)
        assert len(det.events) == 1
        det.observe(t + 10, src=7, dst=9, nbytes=500)
        assert len(det.events) == 1  # still inside cooldown
        for src in (7, 8, 9):
            det.observe(t + milliseconds(6), src=src, dst=9, nbytes=500)
        assert len(det.events) == 2

    def test_destinations_tracked_independently(self):
        det = OnlineIncastDetector(self.settings())
        t = microseconds(1)
        for src in range(3):
            det.observe(t + src, src=src, dst=1, nbytes=500)
            det.observe(t + src, src=src, dst=2, nbytes=500)
        assert {e.dst for e in det.events} == {1, 2}
        assert set(det.watched_destinations()) == {1, 2}

    def test_settings_validation(self):
        with pytest.raises(ConfigError):
            DetectorSettings(min_sources=1)
        with pytest.raises(ConfigError):
            DetectorSettings(window_ps=0)


class TestPeriodicPredictor:
    def bursty_series(self, period, bursts, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        series = np.zeros(period * bursts)
        series[::period] = 100.0
        if noise:
            series += rng.normal(0, noise, series.size)
        return series

    def test_recovers_exact_period(self):
        estimate = PeriodicIncastPredictor().estimate(self.bursty_series(25, 20))
        assert estimate.period_samples == 25
        assert estimate.is_periodic

    def test_noise_tolerated(self):
        series = self.bursty_series(40, 15, noise=5.0)
        estimate = PeriodicIncastPredictor().estimate(series)
        assert estimate.period_samples == 40

    def test_aperiodic_series_low_confidence(self):
        rng = np.random.default_rng(1)
        estimate = PeriodicIncastPredictor().estimate(rng.normal(0, 1, 512))
        assert estimate.confidence < 0.3
        assert not estimate.is_periodic

    def test_next_burst_extrapolation(self):
        series = self.bursty_series(20, 10)  # bursts at 0, 20, ..., 180
        estimate = PeriodicIncastPredictor().estimate(series)
        assert estimate.next_burst_index == 200

    def test_constant_series_degenerates_gracefully(self):
        estimate = PeriodicIncastPredictor().estimate(np.ones(100))
        assert estimate.confidence == 0.0

    def test_short_series_rejected(self):
        with pytest.raises(ConfigError):
            PeriodicIncastPredictor(min_period=10).estimate(np.zeros(20))

    def test_max_period_bound(self):
        series = self.bursty_series(30, 10)
        estimate = PeriodicIncastPredictor(max_period=20).estimate(series)
        assert estimate.period_samples <= 20
