"""FW#2 hook-placement pipelines: TC vs XDP vs NIC offload."""

import pytest

from repro.hoststack import (
    measure_pipeline,
    nic_offload_pipeline,
    tc_proxy_pipeline,
    xdp_proxy_pipeline,
)


@pytest.fixture(scope="module")
def medians():
    return {
        name: measure_pipeline(factory(), packets=60_000, seed=0).percentile_us(50)
        for name, factory in (
            ("tc", tc_proxy_pipeline),
            ("xdp", xdp_proxy_pipeline),
            ("offload", nic_offload_pipeline),
        )
    }


class TestHookPlacements:
    def test_fw2_ordering(self, medians):
        """The paper's FW#2 expectation: XDP < TC; offload < XDP."""
        assert medians["offload"] < medians["xdp"] < medians["tc"]

    def test_xdp_removes_softirq_scale_costs(self, medians):
        # TC pays µs-scale driver/softirq work that XDP skips entirely.
        assert medians["tc"] / medians["xdp"] > 2

    def test_offload_is_submicrosecond(self, medians):
        assert medians["offload"] < 1.0

    def test_tc_pipeline_contains_the_ebpf_stage(self):
        names = tc_proxy_pipeline().stage_names()
        assert "ebpf_forward" in names
        assert "driver_softirq" in names

    def test_xdp_pipeline_has_no_softirq_stage(self):
        names = xdp_proxy_pipeline().stage_names()
        assert "driver_softirq" not in names

    def test_offload_pipeline_has_no_host_stages(self):
        names = nic_offload_pipeline().stage_names()
        assert names == ["nic_datapath"]
