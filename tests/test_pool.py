"""PacketPool recycling, safety rails, and simulator integration."""

import pytest

from repro.errors import SanitizerError
from repro.net.packet import HEADER_BYTES, PacketType, make_data
from repro.net.pool import PacketPool


class TestRecycling:
    def test_first_acquisition_allocates(self):
        pool = PacketPool()
        packet = pool.data(1, 0, 10, 20, 1000)
        assert pool.stats() == {"allocated": 1, "reused": 0, "released": 0,
                                "free": 0}
        assert packet.kind == PacketType.DATA
        assert packet.size_bytes == 1000 + HEADER_BYTES

    def test_release_then_acquire_reuses_the_same_object(self):
        pool = PacketPool()
        first = pool.data(1, 0, 10, 20, 1000)
        first_id = id(first)  # repro: allow[id-key] test-local identity probe
        first.release()
        assert len(pool) == 1
        again = pool.data(2, 7, 30, 40, 500)
        assert id(again) == first_id  # repro: allow[id-key]
        assert pool.stats() == {"allocated": 1, "reused": 1, "released": 1,
                                "free": 0}

    def test_reuse_reinitializes_every_field(self):
        pool = PacketPool()
        data = pool.data(1, 5, 10, 20, 1000, stops=(3,), ts=99, retx=2)
        data.trimmed = True
        data.ecn_ce = True
        data.release()
        ack = pool.ack(2, 20, 10, ack_seq=8, echo_seq=5, ecn_echo=True,
                       ts_echo=99)
        assert ack.kind == PacketType.ACK
        assert ack.is_control
        assert not ack.trimmed and not ack.ecn_ce
        assert ack.ack_seq == 8 and ack.echo_seq == 5 and ack.ecn_echo
        assert ack.stops == () and ack.retx == 0
        assert ack.size_bytes == HEADER_BYTES
        ack.release()
        nack = pool.nack(3, 11, 10, 20, ts_echo=42)
        assert nack.kind == PacketType.NACK
        assert nack.seq == 11 and nack.echo_seq == 11 and nack.ts_echo == 42
        assert not nack.ecn_echo and nack.ack_seq == -1

    def test_pool_constructors_match_make_helpers(self):
        pool = PacketPool()
        pooled = pool.data(1, 3, 10, 20, 4096, stops=(5,), ts=7, retx=1)
        built = make_data(1, 3, 10, 20, stops=(5,), payload_bytes=4096,
                          ts=7, retx=1)
        for name in ("flow_id", "kind", "seq", "src", "dst", "stops",
                     "payload_bytes", "size_bytes", "ts", "retx",
                     "is_control"):
            assert getattr(pooled, name) == getattr(built, name), name


class TestSafetyRails:
    def test_double_release_raises(self):
        pool = PacketPool()
        packet = pool.data(1, 0, 10, 20, 1000)
        packet.release()
        with pytest.raises(SanitizerError, match="released twice"):
            packet.release()

    def test_unpooled_packet_release_is_a_noop(self):
        packet = make_data(1, 0, 10, 20, payload_bytes=1000)
        packet.release()
        packet.release()  # still a no-op: no pool, no double-free flag

    def test_sanitize_catches_reference_kept_past_release(self):
        pool = PacketPool(sanitize=True)
        leaked = pool.data(1, 0, 10, 20, 1000)
        leaked.release()
        # `leaked` is still referenced by this frame when the pool tries to
        # hand the object out again — exactly the use-after-release bug the
        # acquire-time check exists for.
        with pytest.raises(SanitizerError, match="still referenced"):
            pool.data(2, 0, 10, 20, 1000)
        assert leaked.flow_id == 1  # untouched: the reuse was refused

    def test_sanitize_accepts_a_clean_recycle(self):
        pool = PacketPool(sanitize=True)
        pool.data(1, 0, 10, 20, 1000).release()
        packet = pool.data(2, 0, 10, 20, 1000)
        assert packet.flow_id == 2
        assert pool.reused == 1


class TestProvenance:
    def test_sanitizing_pool_stamps_acquire_sites(self):
        pool = PacketPool(sanitize=True)
        packet = pool.data(1, 0, 10, 20, 1000)
        assert packet._acquired_at is not None
        assert packet._acquired_at.startswith("test_pool.py:")
        assert packet._released_at is None

    def test_plain_pool_skips_the_stamp(self):
        # Provenance is a sanitize-only cost: the hot path stays frame-free.
        pool = PacketPool()
        packet = pool.data(1, 0, 10, 20, 1000)
        assert packet._acquired_at is None
        packet.release()
        assert packet._released_at is None

    def test_double_release_names_both_sites(self):
        pool = PacketPool(sanitize=True)
        packet = pool.data(1, 0, 10, 20, 1000)
        packet.release()
        with pytest.raises(SanitizerError) as exc:
            packet.release()
        message = str(exc.value)
        assert "acquired at test_pool.py:" in message
        assert "released at test_pool.py:" in message
        assert "second release at test_pool.py:" in message

    def test_refcount_diagnostic_names_the_acquire_site(self):
        pool = PacketPool(sanitize=True)
        leaked = pool.data(1, 0, 10, 20, 1000)
        leaked.release()
        with pytest.raises(SanitizerError) as exc:
            pool.data(2, 0, 10, 20, 1000)
        assert "acquired at test_pool.py:" in str(exc.value)

    def test_reacquire_clears_stale_release_site(self):
        pool = PacketPool(sanitize=True)
        first = pool.data(1, 0, 10, 20, 1000)
        first.release()
        del first  # drop the frame's reference so the recycle is clean
        again = pool.data(2, 0, 10, 20, 1000)
        assert again._released_at is None
        assert again._acquired_at is not None


class TestFaultPlanDiagnostics:
    """The pool rails stay quiet across drop-heavy fault plans.

    Faults exercise the ownership contract's hardest paths — ports
    releasing packets they drop on a downed link, a crashed proxy
    releasing the batch it absorbed — so a sanitized run under a fault
    plan is the strongest end-to-end check that every component releases
    exactly once.
    """

    @staticmethod
    def _scenario(scheme, faults):
        from repro.config import TransportConfig, small_interdc_config
        from repro.experiments.runner import IncastScenario
        from repro.units import kilobytes, seconds

        return IncastScenario(
            scheme=scheme, degree=4, total_bytes=kilobytes(400),
            interdc=small_interdc_config(),
            transport=TransportConfig(max_consecutive_timeouts=8),
            horizon_ps=seconds(2), faults=faults,
        )

    def test_sanitized_run_survives_link_down_mid_delivery(self):
        from repro.experiments.runner import run_incast
        from repro.faults.plan import FaultPlan, LinkDown, LinkUp
        from repro.telemetry.options import RunOptions
        from repro.units import microseconds

        plan = FaultPlan((
            LinkDown(at_ps=microseconds(20)),
            LinkUp(at_ps=microseconds(220)),
        ))
        result = run_incast(
            self._scenario("streamlined", plan), RunOptions(sanitize=True)
        )
        # Packets in flight when the link dropped were released by the
        # port, not leaked: conservation closed and no rail tripped.
        assert result.counters.packets_lost_to_failures > 0
        assert result.conservation is not None

    def test_sanitized_run_survives_proxy_crash_holding_a_batch(self):
        from repro.experiments.runner import run_incast
        from repro.faults.plan import FaultPlan, ProxyCrash, ProxyRestart
        from repro.telemetry.options import RunOptions
        from repro.units import microseconds

        plan = FaultPlan((
            ProxyCrash(at_ps=microseconds(30), proxy="primary"),
            ProxyRestart(at_ps=microseconds(230), proxy="primary"),
        ))
        result = run_incast(
            self._scenario("streamlined", plan), RunOptions(sanitize=True)
        )
        assert result.conservation is not None


class TestSimulatorIntegration:
    def test_simulator_owns_a_pool_and_sanitizer_arms_it(self):
        from repro.analysis.sanitizer import Sanitizer
        from repro.sim.simulator import Simulator

        sim = Simulator(seed=0)
        assert isinstance(sim.packet_pool, PacketPool)
        assert not sim.packet_pool.sanitize
        Sanitizer().install(sim)
        assert sim.packet_pool.sanitize

    def test_incast_run_recycles_packets(self):
        from repro.config import TransportConfig, small_interdc_config
        from repro.experiments.runner import IncastScenario
        from repro.proxy.placement import pick_senders
        from repro.sim.simulator import Simulator
        from repro.topology.interdc import build_interdc
        from repro.transport.connection import Connection
        from repro.units import kilobytes

        scenario = IncastScenario(
            degree=2, total_bytes=kilobytes(1600),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        sim = Simulator(seed=0)
        topo = build_interdc(sim, scenario.interdc)
        receiver = topo.fabrics[1].hosts[0]
        for i, (host, size) in enumerate(
            zip(pick_senders(topo.fabrics[0], 2), scenario.flow_sizes())
        ):
            Connection(topo.net, host, receiver, size, scenario.transport,
                       label=f"p{i}").start()
        sim.run()
        stats = sim.packet_pool.stats()
        # The free list must actually cycle (allocations alone would mean
        # no endpoint ever called release), and its accounting must close:
        # every reuse consumed a prior release, the rest still sit free.
        assert stats["reused"] > 100
        assert stats["free"] == stats["released"] - stats["reused"]
        assert stats["allocated"] + stats["reused"] >= stats["released"]
