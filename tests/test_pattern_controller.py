"""The pattern-aware rerouting controller and its end-to-end loop."""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError
from repro.patterns import ControllerConfig, PatternAwareController, run_pattern_aware
from repro.units import megabytes, milliseconds
from repro.workloads import periodic_incasts


def feed_periodic(controller, bursts, period_ps, dst=0, nbytes=1_000_000):
    for i in range(bursts):
        controller.observe_burst(i * period_ps, dst, nbytes)


class TestController:
    def make(self, **kw):
        defaults = dict(bin_ps=milliseconds(10), min_bursts=4)
        defaults.update(kw)
        return PatternAwareController(ControllerConfig(**defaults))

    def test_learns_period_after_enough_bursts(self):
        controller = self.make()
        feed_periodic(controller, 6, milliseconds(60))
        assert controller.predicted_period_ps(0) == milliseconds(60)

    def test_no_prediction_while_learning(self):
        controller = self.make()
        feed_periodic(controller, 2, milliseconds(60))
        assert controller.predicted_period_ps(0) is None
        assert not controller.proxy_staged_for(milliseconds(120), 0)

    def test_stages_proxy_for_on_time_burst(self):
        controller = self.make()
        feed_periodic(controller, 6, milliseconds(60))
        next_burst = 6 * milliseconds(60)
        assert controller.proxy_staged_for(next_burst, 0)

    def test_tolerance_window(self):
        controller = self.make(tolerance_bins=1)
        feed_periodic(controller, 6, milliseconds(60))
        next_burst = 6 * milliseconds(60)
        assert controller.proxy_staged_for(next_burst + milliseconds(10), 0)
        assert not controller.proxy_staged_for(next_burst + milliseconds(30), 0)

    def test_destinations_learned_independently(self):
        controller = self.make()
        feed_periodic(controller, 6, milliseconds(60), dst=1)
        assert controller.predicted_period_ps(1) == milliseconds(60)
        assert controller.predicted_period_ps(2) is None

    def test_aperiodic_traffic_never_predicted(self):
        controller = self.make(min_bursts=4)
        import random
        rng = random.Random(0)
        t = 0
        for _ in range(30):
            t += rng.randrange(milliseconds(5), milliseconds(200))
            controller.observe_burst(t, 0, 1_000_000)
        # confidence gate should reject a noisy rhythm most of the time;
        # at minimum it must not fabricate a stable period equal to chance
        period = controller.predicted_period_ps(0)
        assert period is None or controller.predictions_made >= 1

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ControllerConfig(bin_ps=0)
        with pytest.raises(ConfigError):
            ControllerConfig(min_bursts=1)
        with pytest.raises(ConfigError):
            ControllerConfig(confidence=0)


class TestPatternAwareRun:
    @pytest.fixture(scope="class")
    def result(self):
        jobs = periodic_incasts(bursts=8, period_ps=milliseconds(60), degree=4,
                                total_bytes=megabytes(16))
        controller = PatternAwareController(
            ControllerConfig(bin_ps=milliseconds(10), min_bursts=4)
        )
        return run_pattern_aware(
            jobs, small_interdc_config(), TransportConfig(payload_bytes=4096),
            controller=controller,
        )

    def test_all_bursts_complete(self, result):
        assert result.runs.completed
        assert len(result.runs.ict_ps) == 8

    def test_early_bursts_learn_later_bursts_ride_proxies(self, result):
        assert result.learning_bursts >= 2
        assert result.proxied_jobs  # at least some predicted bursts
        # learning happens on a prefix: every direct burst precedes every proxied one
        direct_ids = [int(name.removeprefix("burst")) for name in result.direct_jobs]
        proxied_ids = [int(name.removeprefix("burst")) for name in result.proxied_jobs]
        assert max(direct_ids) < min(proxied_ids)

    def test_period_learned_exactly(self, result):
        assert result.learned_period_ps == milliseconds(60)

    def test_predicted_bursts_are_faster(self, result):
        assert (result.mean_ict_ps(result.proxied_jobs)
                < 0.7 * result.mean_ict_ps(result.direct_jobs))
