"""The parallel execution engine: hashing, cache, pool, deterministic merge."""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    ExperimentEngine,
    ResultCache,
    Uncacheable,
    resolve_workers,
    run_incast_batch,
    run_parallel,
    scenario_key,
)
from repro.experiments.runner import IncastScenario, run_incast
from repro.experiments.sweeps import degree_sweep, run_scheme_summary, sweep_digest
from repro.units import megabytes, microseconds


@pytest.fixture()
def tiny_scenario() -> IncastScenario:
    """Small enough that a single run takes ~tens of milliseconds."""
    return IncastScenario(
        degree=2,
        total_bytes=megabytes(1),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )


def _square(x: int) -> int:  # top-level: picklable for the pool
    return x * x


class TestScenarioKey:
    def test_stable_across_calls(self, tiny_scenario):
        assert scenario_key(tiny_scenario) == scenario_key(tiny_scenario)

    def test_equal_scenarios_hash_identically(self, tiny_scenario):
        clone = replace(tiny_scenario)
        assert scenario_key(clone) == scenario_key(tiny_scenario)

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 7},
            {"degree": 3},
            {"total_bytes": megabytes(2)},
            {"scheme": "streamlined"},
            {"routing": "ecmp"},
        ],
    )
    def test_any_field_change_changes_key(self, tiny_scenario, change):
        assert scenario_key(replace(tiny_scenario, **change)) != scenario_key(
            tiny_scenario
        )

    def test_nested_config_change_changes_key(self, tiny_scenario):
        varied = replace(
            tiny_scenario,
            interdc=tiny_scenario.interdc.with_backbone_delay(microseconds(5)),
        )
        assert scenario_key(varied) != scenario_key(tiny_scenario)

    def test_callable_fields_are_uncacheable(self, tiny_scenario):
        with_sampler = replace(tiny_scenario, proxy_delay_sampler=lambda: 0)
        with pytest.raises(Uncacheable):
            scenario_key(with_sampler)

    def test_non_dataclass_rejected(self):
        with pytest.raises(Uncacheable):
            scenario_key({"not": "a dataclass"})

    def test_reregistered_scheme_changes_key(self, tiny_scenario):
        # Regression: keys used to hash the scheme *name* only, so a
        # third-party registration reusing a name silently reused the old
        # implementation's cached results.
        from repro.schemes import SCHEME_REGISTRY, SchemeWiring, register_scheme

        @register_scheme("keytest")
        def wire_one(ctx):
            return SchemeWiring()

        try:
            scenario = replace(tiny_scenario, scheme="keytest")
            first = scenario_key(scenario)
            assert first == scenario_key(scenario)  # stable while unchanged

            @register_scheme("keytest", replace=True)
            def wire_two(ctx):
                return SchemeWiring()  # different implementation, same name

            assert scenario_key(scenario) != first
        finally:
            SCHEME_REGISTRY.unregister("keytest")


class TestRunParallel:
    def test_serial_path(self):
        assert run_parallel(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_pool_preserves_input_order(self):
        assert run_parallel(_square, list(range(8)), workers=2) == [
            x * x for x in range(8)
        ]

    def test_unpicklable_work_falls_back_to_serial(self):
        fallbacks = []
        results = run_parallel(
            lambda x: x + 1, [1, 2], workers=2, on_fallback=fallbacks.append
        )
        assert results == [2, 3]
        assert fallbacks  # the caller was told why

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ExperimentError):
            resolve_workers(-1)


class TestDeterministicMerge:
    def test_workers_do_not_change_results(self, tiny_scenario):
        scenarios = [replace(tiny_scenario, seed=s) for s in range(3)]
        serial = run_incast_batch(scenarios, workers=1)
        pooled = run_incast_batch(scenarios, workers=4)
        assert [r.ict_ps for r in serial] == [r.ict_ps for r in pooled]
        assert [r.counters for r in serial] == [r.counters for r in pooled]
        assert [r.flow_completion_ps for r in serial] == [
            r.flow_completion_ps for r in pooled
        ]

    def test_sweep_summaries_identical_across_worker_counts(self, tiny_scenario):
        kwargs = dict(
            degrees=(2, 3), schemes=("baseline", "streamlined"), reps=2
        )
        serial = degree_sweep(tiny_scenario, workers=1, **kwargs)
        pooled = degree_sweep(tiny_scenario, workers=4, **kwargs)
        assert sweep_digest(serial) == sweep_digest(pooled)

    def test_scheme_summary_matches_direct_runs(self, tiny_scenario):
        summary, results = run_scheme_summary(tiny_scenario, reps=2)
        direct = [run_incast(replace(tiny_scenario, seed=s)) for s in range(2)]
        assert [r.ict_ps for r in results] == [r.ict_ps for r in direct]
        assert summary.ict.mean == sum(r.ict_ps for r in direct) / 2


class TestResultCache:
    def test_second_run_is_served_from_cache(self, tiny_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        scenarios = [replace(tiny_scenario, seed=s) for s in range(2)]

        first_engine = ExperimentEngine(workers=1, cache=cache)
        first = first_engine.run_incasts(scenarios)
        assert first_engine.stats.cache_misses == 2
        assert first_engine.stats.cache_hits == 0
        assert all(not r.from_cache for r in first)

        second_engine = ExperimentEngine(workers=1, cache=cache)
        second = second_engine.run_incasts(scenarios)
        assert second_engine.stats.cache_hits == 2
        assert second_engine.stats.cache_misses == 0
        assert all(r.from_cache for r in second)
        assert [r.ict_ps for r in first] == [r.ict_ps for r in second]
        assert [r.counters for r in first] == [r.counters for r in second]

    def test_cached_and_uncached_sweeps_summarize_identically(
        self, tiny_scenario, tmp_path
    ):
        kwargs = dict(degrees=(2,), schemes=("baseline",), reps=2)
        cache = ResultCache(tmp_path)
        cold = degree_sweep(tiny_scenario, cache=cache, **kwargs)
        warm = degree_sweep(tiny_scenario, cache=cache, **kwargs)
        uncached = degree_sweep(tiny_scenario, **kwargs)
        assert sweep_digest(cold) == sweep_digest(warm) == sweep_digest(uncached)

    def test_changed_scenario_invalidates(self, tiny_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentEngine(workers=1, cache=cache).run_incasts([tiny_scenario])

        engine = ExperimentEngine(workers=1, cache=cache)
        engine.run_incasts([replace(tiny_scenario, seed=99)])
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 1

    def test_corrupt_entry_is_a_miss(self, tiny_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key(tiny_scenario)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")

        engine = ExperimentEngine(workers=1, cache=cache)
        results = engine.run_incasts([tiny_scenario])
        assert engine.stats.cache_misses == 1
        assert results[0].completed

    def test_corrupt_entry_is_deleted_on_load_failure(self, tiny_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key(tiny_scenario)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")

        assert cache.get(key) is None
        # the poisoned file is gone, so the next store/get cycle is clean
        assert not path.exists()
        result = run_incast(tiny_scenario)
        cache.put(key, result)
        assert cache.get(key) is not None

    def test_uncacheable_scenarios_just_run(self, tiny_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = replace(tiny_scenario, proxy_delay_sampler=lambda: 0)
        engine = ExperimentEngine(workers=1, cache=cache)
        results = engine.run_incasts([scenario])
        assert results[0].completed
        assert cache.clear() == 0  # nothing was stored

    def test_clear_removes_entries(self, tiny_scenario, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentEngine(workers=1, cache=cache).run_incasts([tiny_scenario])
        assert cache.clear() == 1
        assert cache.get(scenario_key(tiny_scenario)) is None


class TestEngineStats:
    def test_timing_is_threaded_through(self, tiny_scenario):
        engine = ExperimentEngine(workers=1)
        results = engine.run_incasts([tiny_scenario])
        assert results[0].wall_seconds > 0
        assert engine.stats.sim_wall_seconds >= results[0].wall_seconds
        assert engine.stats.wall_seconds > 0
        assert engine.stats.tasks == 1
        assert engine.stats.speedup > 0
