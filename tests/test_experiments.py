"""Experiment harness: scenarios, runner, sweeps, reports."""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.report import average_reductions, render_table, sweep_table
from repro.experiments.runner import IncastScenario, run_incast
from repro.experiments.sweeps import degree_sweep, run_scheme_summary, size_sweep
from repro.units import kilobytes, megabytes, milliseconds


@pytest.fixture()
def small_scenario():
    return IncastScenario(
        degree=3,
        total_bytes=megabytes(10),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )


class TestScenario:
    def test_flow_sizes_split_equally(self, small_scenario):
        scenario = replace(small_scenario, total_bytes=100, degree=3)
        assert scenario.flow_sizes() == [34, 33, 33]
        assert sum(scenario.flow_sizes()) == 100

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ExperimentError):
            IncastScenario(scheme="carrier-pigeon")

    def test_degree_validation(self):
        with pytest.raises(ExperimentError):
            IncastScenario(degree=0)
        with pytest.raises(ExperimentError):
            IncastScenario(degree=10, total_bytes=5)


class TestRunIncast:
    @pytest.mark.parametrize("scheme", ["baseline", "naive", "streamlined", "trimless"])
    def test_all_schemes_complete(self, small_scenario, scheme):
        result = run_incast(replace(small_scenario, scheme=scheme))
        assert result.completed
        assert result.ict_ps > 0
        assert len(result.flow_completion_ps) == 3
        assert result.flow_completion_ps == sorted(result.flow_completion_ps)

    def test_ict_is_last_flow(self, small_scenario):
        result = run_incast(small_scenario)
        assert result.ict_ps == result.flow_completion_ps[-1]

    def test_deterministic_given_seed(self, small_scenario):
        a = run_incast(small_scenario)
        b = run_incast(small_scenario)
        assert a.ict_ps == b.ict_ps

    def test_seeds_change_spraying(self, small_scenario):
        a = run_incast(replace(small_scenario, seed=0))
        b = run_incast(replace(small_scenario, seed=1))
        assert a.ict_ps != b.ict_ps  # different spray choices -> different ICT

    def test_streamlined_enables_trimming(self, small_scenario):
        result = run_incast(replace(small_scenario, scheme="streamlined"))
        assert result.counters.packets_trimmed > 0
        assert result.counters.packets_dropped == 0
        assert result.proxy_nacks_sent > 0

    def test_baseline_drops_instead(self, small_scenario):
        result = run_incast(small_scenario)
        assert result.counters.packets_trimmed == 0
        assert result.counters.packets_dropped > 0

    def test_headline_result_proxies_beat_baseline(self, small_scenario):
        base = run_incast(small_scenario)
        naive = run_incast(replace(small_scenario, scheme="naive"))
        streamlined = run_incast(replace(small_scenario, scheme="streamlined"))
        assert naive.ict_ps < base.ict_ps
        assert streamlined.ict_ps < base.ict_ps

    def test_horizon_caps_incomplete_runs(self, small_scenario):
        result = run_incast(replace(small_scenario, horizon_ps=milliseconds(1)))
        assert not result.completed
        assert result.ict_ps == milliseconds(1)


class TestSweeps:
    def test_scheme_summary_statistics(self, small_scenario):
        summary, results = run_scheme_summary(small_scenario, reps=2)
        assert summary.ict.count == 2
        assert summary.ict.minimum <= summary.ict.mean <= summary.ict.maximum
        assert summary.all_completed
        assert len(results) == 2

    def test_reps_validation(self, small_scenario):
        with pytest.raises(ExperimentError):
            run_scheme_summary(small_scenario, reps=0)

    def test_degree_sweep_structure(self, small_scenario):
        points = degree_sweep(small_scenario, degrees=(2, 3),
                              schemes=("baseline", "streamlined"), reps=1)
        assert [p.x for p in points] == [2.0, 3.0]
        for point in points:
            assert set(point.schemes) == {"baseline", "streamlined"}
            assert point.schemes["baseline"].reduction_vs_baseline is None
            assert point.schemes["streamlined"].reduction_vs_baseline is not None

    def test_size_sweep_varies_bytes(self, small_scenario):
        points = size_sweep(small_scenario, sizes_bytes=(kilobytes(500), megabytes(10)),
                            schemes=("baseline",), reps=1)
        assert points[0].schemes["baseline"].ict.mean < points[1].schemes["baseline"].ict.mean

    def test_reduction_helper(self, small_scenario):
        points = degree_sweep(small_scenario, degrees=(3,),
                              schemes=("baseline", "streamlined"), reps=1)
        avg = average_reductions(points, "streamlined")
        assert avg == pytest.approx(points[0].reduction("streamlined"))


class TestReports:
    def test_render_table_alignment(self):
        table = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_sweep_table_contains_schemes(self, small_scenario):
        points = degree_sweep(small_scenario, degrees=(3,),
                              schemes=("baseline", "streamlined"), reps=1)
        table = sweep_table(points, ("baseline", "streamlined"))
        assert "degree=3" in table
        assert "streamlined vs base" in table
        assert "%" in table
