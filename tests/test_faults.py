"""Fault injection: plans, the injector, crash semantics, and failover."""

from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError, ExperimentError, FaultError
from repro.experiments.runner import IncastScenario, run_incast
from repro.faults import (
    BufferDegrade,
    CrashRun,
    FailoverConfig,
    FaultContext,
    FaultInjector,
    FaultPlan,
    LinkDown,
    LinkUp,
    PacketBlackhole,
    PacketCorrupt,
    ProxyCrash,
    ProxyRestart,
    StallRun,
    arm_faults,
    blackhole_plan,
    link_flap_plan,
    merge_plans,
    proxy_crash_plan,
)
from repro.sim.simulator import Simulator
from repro.topology.interdc import build_interdc
from repro.units import kilobytes, microseconds, milliseconds, seconds


def _fault_scenario(scheme: str, **overrides) -> IncastScenario:
    """Small, fast scenario with a bounded give-up point."""
    defaults = dict(
        scheme=scheme,
        degree=4,
        total_bytes=kilobytes(400),
        interdc=small_interdc_config(),
        transport=TransportConfig(max_consecutive_timeouts=8),
        horizon_ps=seconds(2),
    )
    defaults.update(overrides)
    return IncastScenario(**defaults)


class TestFaultPlan:
    def test_json_round_trip_preserves_events(self):
        plan = merge_plans(
            proxy_crash_plan(at_ps=microseconds(10), restart_after_ps=microseconds(50)),
            blackhole_plan(at_ps=0, duration_ps=milliseconds(1), drop_fraction=0.25),
            link_flap_plan("backbone:0", at_ps=microseconds(5), duration_ps=microseconds(5)),
            FaultPlan((PacketCorrupt(at_ps=1, duration_ps=2, corrupt_fraction=0.5),
                       BufferDegrade(at_ps=3, duration_ps=4, factor=0.5))),
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.sorted_events() == plan.sorted_events()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"events": [{"kind": "MeteorStrike", "at_ps": 0}]})

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict(
                {"events": [{"kind": "LinkDown", "at_ps": 0, "bogus": 1}]}
            )

    @pytest.mark.parametrize(
        "build",
        [
            lambda: LinkDown(at_ps=-1),
            lambda: PacketBlackhole(at_ps=0, duration_ps=0),
            lambda: PacketBlackhole(at_ps=0, duration_ps=1, drop_fraction=0.0),
            lambda: PacketBlackhole(at_ps=0, duration_ps=1, drop_fraction=1.5),
            lambda: PacketCorrupt(at_ps=0, duration_ps=1, corrupt_fraction=0.0),
            lambda: BufferDegrade(at_ps=0, duration_ps=1, factor=0.0),
            lambda: BufferDegrade(at_ps=0, duration_ps=1, factor=1.5),
            lambda: ProxyCrash(at_ps=0, proxy="tertiary"),
            lambda: StallRun(at_ps=0, wall_seconds=0.0),
        ],
    )
    def test_malformed_events_raise_at_construction(self, build):
        with pytest.raises(ConfigError):
            build()

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert bool(proxy_crash_plan(at_ps=0))

    def test_scenario_rejects_non_plan_faults(self):
        with pytest.raises(ExperimentError):
            _fault_scenario("baseline", faults=[LinkDown(at_ps=0)])


class TestInjectorTargets:
    def _ctx(self):
        sim = Simulator(seed=0)
        topo = build_interdc(sim, small_interdc_config())
        return sim, FaultContext(topo.net, backbone=topo.backbone)

    def test_malformed_target_rejected_at_arm_time(self):
        sim, ctx = self._ctx()
        plan = FaultPlan((PacketBlackhole(at_ps=0, duration_ps=1, target="nonsense"),))
        with pytest.raises(FaultError):
            FaultInjector(sim, plan, ctx).arm()

    def test_bad_index_rejected(self):
        sim, ctx = self._ctx()
        plan = FaultPlan((LinkDown(at_ps=0, link="sender:x"),))
        with pytest.raises(FaultError):
            FaultInjector(sim, plan, ctx).arm()

    def test_double_arm_rejected(self):
        sim, ctx = self._ctx()
        injector = FaultInjector(sim, proxy_crash_plan(at_ps=0), ctx)
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()

    def test_backbone_target_resolves_both_directions(self):
        _, ctx = self._ctx()
        links = ctx.resolve_links("backbone")
        ports = ctx.resolve_ports("backbone")
        assert links and len(ports) == 2 * len(links)

    def test_absent_role_is_skipped_not_an_error(self):
        # "proxy" under baseline names a role this run does not have.
        result = run_incast(
            _fault_scenario("baseline", faults=proxy_crash_plan(at_ps=microseconds(10)))
        )
        assert result.fault_events_applied == 0
        assert result.fault_events_skipped == 1
        assert result.completed

    def test_arm_faults_returns_none_for_empty_plan(self):
        sim, ctx = self._ctx()
        assert arm_faults(sim, FaultPlan(), ctx) is None
        assert arm_faults(sim, None, ctx) is None


class TestFaultBehavior:
    def test_total_blackhole_fails_flows_in_bounded_time(self):
        # 100% drop on the backbone for the whole horizon: every sender
        # exhausts max_consecutive_timeouts and declares its flow failed.
        plan = blackhole_plan(at_ps=0, duration_ps=seconds(2), drop_fraction=1.0)
        result = run_incast(_fault_scenario("baseline", faults=plan))
        assert not result.completed
        assert result.failed_flows == 4
        assert result.counters.packets_blackholed > 0
        # the run ended by give-up, not by grinding to the horizon
        assert result.timeouts == 4 * 8

    def test_partial_blackhole_recovers(self):
        plan = blackhole_plan(
            at_ps=0, duration_ps=milliseconds(50), drop_fraction=0.05
        )
        clean = run_incast(_fault_scenario("baseline"))
        faulty = run_incast(_fault_scenario("baseline", faults=plan))
        assert faulty.completed
        assert faulty.counters.packets_blackholed > 0
        assert faulty.ict_ps > clean.ict_ps

    def test_corruption_burns_bandwidth_but_is_dropped_at_host(self):
        # The window must cover the first burst's *arrival* at the receiver
        # access link, one backbone delay (~1ms) after the start of the run.
        plan = FaultPlan((
            PacketCorrupt(
                at_ps=0, duration_ps=milliseconds(3),
                corrupt_fraction=1.0, target="receiver",
            ),
        ))
        result = run_incast(_fault_scenario("baseline", faults=plan))
        assert result.completed
        assert result.counters.packets_corrupted > 0
        assert result.counters.corrupt_drops > 0

    def test_link_flap_recovers(self):
        plan = link_flap_plan("backbone", at_ps=0, duration_ps=milliseconds(1))
        clean = run_incast(_fault_scenario("baseline"))
        flapped = run_incast(_fault_scenario("baseline", faults=plan))
        assert flapped.completed
        assert flapped.ict_ps > clean.ict_ps

    def test_buffer_degrade_shrinks_and_restores_capacity(self):
        sim = Simulator(seed=0)
        topo = build_interdc(sim, small_interdc_config())
        ctx = FaultContext(topo.net, receiver_host=topo.fabrics[1].hosts[0])
        ports = ctx.resolve_ports("receiver")
        assert ports
        original = [p.queue.capacity_bytes for p in ports]
        plan = FaultPlan((
            BufferDegrade(at_ps=0, duration_ps=microseconds(10),
                          factor=0.5, target="receiver"),
            BufferDegrade(at_ps=microseconds(2), duration_ps=microseconds(4),
                          factor=0.5, target="receiver"),
        ))
        FaultInjector(sim, plan, ctx).arm()
        sim.run(until=microseconds(3))
        # both windows active: capacity scaled by 0.5 * 0.5
        assert all(
            p.queue.capacity_bytes == max(1, round(orig * 0.25))
            for p, orig in zip(ports, original)
        )
        sim.run(until=microseconds(8))
        assert all(
            p.queue.capacity_bytes == max(1, round(orig * 0.5))
            for p, orig in zip(ports, original)
        )
        sim.run(until=microseconds(20))
        assert [p.queue.capacity_bytes for p in ports] == original

    def test_deterministic_across_identical_runs(self):
        plan = blackhole_plan(at_ps=0, duration_ps=milliseconds(50), drop_fraction=0.1)
        a = run_incast(_fault_scenario("streamlined", faults=plan, seed=5))
        b = run_incast(_fault_scenario("streamlined", faults=plan, seed=5))
        assert a.ict_ps == b.ict_ps
        assert a.events_executed == b.events_executed
        assert a.counters.packets_blackholed == b.counters.packets_blackholed


class TestProxyCrashSemantics:
    CRASH_AT = microseconds(10)  # inside the first transmission burst

    def test_streamlined_crash_without_restart_fails_flows(self):
        result = run_incast(
            _fault_scenario("streamlined", faults=proxy_crash_plan(at_ps=self.CRASH_AT))
        )
        assert not result.completed
        assert result.failed_flows == 4

    def test_streamlined_restart_recovers_flows(self):
        plan = proxy_crash_plan(
            at_ps=self.CRASH_AT, restart_after_ps=milliseconds(1)
        )
        result = run_incast(_fault_scenario("streamlined", faults=plan))
        assert result.completed
        assert result.failed_flows == 0
        assert result.fault_events_applied == 2

    def test_trimless_restart_recovers_flows(self):
        plan = proxy_crash_plan(
            at_ps=self.CRASH_AT, restart_after_ps=milliseconds(1)
        )
        result = run_incast(_fault_scenario("trimless", faults=plan))
        assert result.completed

    def test_naive_crash_kills_flows_even_with_restart(self):
        # Split-connection state is process memory: restarting the proxy
        # does not resurrect relays that were in flight.
        plan = proxy_crash_plan(
            at_ps=self.CRASH_AT, restart_after_ps=microseconds(50)
        )
        result = run_incast(_fault_scenario("naive", faults=plan))
        assert not result.completed
        assert result.failed_flows == 4

    def test_crash_after_completion_changes_nothing(self):
        clean = run_incast(_fault_scenario("streamlined"))
        late = run_incast(
            _fault_scenario(
                "streamlined",
                faults=proxy_crash_plan(at_ps=clean.ict_ps + microseconds(1)),
                horizon_ps=clean.ict_ps + microseconds(10),
            )
        )
        assert late.completed
        assert late.ict_ps == clean.ict_ps


class TestProxyFailover:
    def test_failover_config_validation(self):
        with pytest.raises(ConfigError):
            FailoverConfig(probe_interval_ps=0)
        with pytest.raises(ConfigError):
            FailoverConfig(probe_interval_ps=10, detection_timeout_ps=5)

    def test_healthy_run_never_migrates(self):
        result = run_incast(_fault_scenario("proxy-failover"))
        assert result.completed
        assert result.failovers == 0

    def test_crash_triggers_migration_and_completion(self):
        result = run_incast(
            _fault_scenario(
                "proxy-failover", faults=proxy_crash_plan(at_ps=microseconds(10))
            )
        )
        assert result.completed
        assert result.failed_flows == 0
        assert result.failovers == 1
        # recovery costs detection + retransmission, far less than the horizon
        assert result.ict_ps < milliseconds(100)

    def test_failover_beats_giving_up(self):
        crash = proxy_crash_plan(at_ps=microseconds(10))
        stranded = run_incast(_fault_scenario("streamlined", faults=crash))
        failover = run_incast(_fault_scenario("proxy-failover", faults=crash))
        assert not stranded.completed
        assert failover.completed
        assert failover.ict_ps < stranded.ict_ps

    def test_crash_targeting_backup_is_survivable(self):
        plan = FaultPlan((ProxyCrash(at_ps=microseconds(10), proxy="backup"),))
        result = run_incast(_fault_scenario("proxy-failover", faults=plan))
        assert result.completed
        assert result.failovers == 0
        assert result.fault_events_applied == 1

    def test_backup_crash_is_skipped_for_single_proxy_schemes(self):
        plan = FaultPlan((ProxyCrash(at_ps=microseconds(10), proxy="backup"),))
        result = run_incast(_fault_scenario("streamlined", faults=plan))
        assert result.completed
        assert result.fault_events_skipped == 1


#: Tight pool timings so detection, migration, restart, and fail-back all
#: land inside one small incast (mirrors the recovery sweep's settings).
_FAST_POOL = FailoverConfig(
    probe_interval_ps=microseconds(50),
    detection_timeout_ps=microseconds(100),
    failback_stabilization_ps=microseconds(100),
)


class TestFailbackAndDegrade:
    """The pool manager past its first migration: fail-back when the
    primary returns, degrade to direct when the whole pool is dead."""

    def test_primary_restart_wins_flows_back(self):
        # Crash -> detect -> migrate -> restart -> stabilize -> fail back.
        # The old manager stopped probing after the first migration, so
        # this ordering silently pinned flows to the backup forever.
        plan = proxy_crash_plan(
            at_ps=microseconds(10), restart_after_ps=microseconds(300)
        )
        result = run_incast(
            _fault_scenario("proxy-failover", faults=plan, failover=_FAST_POOL)
        )
        assert result.completed
        assert result.failed_flows == 0
        assert result.failovers == 1
        assert result.failbacks == 1
        assert result.proxy_degrades == 0

    def test_restart_before_detection_prevents_migration(self):
        # The restart lands inside the detection window: the streak resets
        # and no migration (or fail-back) ever happens.
        plan = proxy_crash_plan(
            at_ps=microseconds(10), restart_after_ps=microseconds(20)
        )
        result = run_incast(
            _fault_scenario("proxy-failover", faults=plan, failover=_FAST_POOL)
        )
        assert result.completed
        assert result.failovers == 0
        assert result.failbacks == 0

    def test_backup_crash_after_migration_degrades_to_direct(self):
        # Crash the primary, migrate, then crash the backup too: with no
        # live member left the manager must strip the detour and let the
        # flows run direct rather than stranding them on a dead proxy.
        plan = FaultPlan((
            ProxyCrash(at_ps=microseconds(10), proxy="primary"),
            ProxyCrash(at_ps=microseconds(400), proxy="backup"),
        ))
        result = run_incast(
            _fault_scenario("proxy-failover", faults=plan, failover=_FAST_POOL)
        )
        assert result.completed
        assert result.failed_flows == 0
        assert result.failovers == 1
        assert result.proxy_degrades == 1

    def test_backup_first_then_primary_degrades_without_migration(self):
        # Reverse ordering: the backup dies while idle, then the primary
        # dies too.  No live target exists at detection time, so the pool
        # degrades straight to direct instead of migrating.
        plan = FaultPlan((
            ProxyCrash(at_ps=microseconds(10), proxy="backup"),
            ProxyCrash(at_ps=microseconds(60), proxy="primary"),
        ))
        result = run_incast(
            _fault_scenario("proxy-failover", faults=plan, failover=_FAST_POOL)
        )
        assert result.completed
        assert result.failed_flows == 0
        assert result.failovers == 0
        assert result.proxy_degrades == 1

    def test_stabilization_validation(self):
        with pytest.raises(ConfigError):
            FailoverConfig(
                probe_interval_ps=microseconds(50),
                detection_timeout_ps=microseconds(100),
                failback_stabilization_ps=microseconds(10),
            )


class TestFaultPlanLinkValidation:
    """Contradictory link timelines are rejected at construction."""

    def test_duplicate_linkdown_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan((
                LinkDown(at_ps=0, link="backbone:0"),
                LinkDown(at_ps=10, link="backbone:0"),
            ))

    def test_linkup_without_linkdown_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan((LinkUp(at_ps=10, link="backbone:0"),))

    def test_down_up_down_is_valid(self):
        plan = FaultPlan((
            LinkDown(at_ps=0, link="backbone:0"),
            LinkUp(at_ps=10, link="backbone:0"),
            LinkDown(at_ps=20, link="backbone:0"),
        ))
        assert len(plan.sorted_events()) == 3

    def test_distinct_targets_are_independent(self):
        plan = FaultPlan((
            LinkDown(at_ps=0, link="backbone:0"),
            LinkDown(at_ps=0, link="backbone:1"),
        ))
        assert len(plan.sorted_events()) == 2

    def test_validation_uses_time_order_not_tuple_order(self):
        # Events may be listed out of order; the timeline is what counts.
        plan = FaultPlan((
            LinkUp(at_ps=10, link="backbone:0"),
            LinkDown(at_ps=0, link="backbone:0"),
        ))
        assert len(plan.sorted_events()) == 2

    def test_repeated_crash_restart_cycles_are_idempotent_not_errors(self):
        # Proxy timelines stay idempotent by design (documented on the
        # plan): a second crash of a crashed proxy is a no-op, not a bug.
        plan = FaultPlan((
            ProxyCrash(at_ps=0, proxy="primary"),
            ProxyCrash(at_ps=10, proxy="primary"),
        ))
        assert len(plan.sorted_events()) == 2
