"""Multi-DC chains and cascaded relays."""

import pytest

from repro.config import FabricConfig, QueueSpec, TransportConfig
from repro.errors import ConfigError, ExperimentError, ProxyError
from repro.experiments.cascade import CascadeScenario, run_cascade
from repro.proxy.cascade import build_relay_chain
from repro.sim.simulator import Simulator
from repro.topology.multidc import MultiDcConfig, build_multidc
from repro.units import kilobytes, megabytes, milliseconds
from dataclasses import replace


def small_chain(segments=(milliseconds(1), milliseconds(10))) -> MultiDcConfig:
    fabric = FabricConfig(
        spines=2, leaves=2, servers_per_leaf=4,
        switch_queue=QueueSpec(kind="ecn", capacity_bytes=megabytes(4),
                               ecn_low_bytes=kilobytes(33.2),
                               ecn_high_bytes=kilobytes(136.95)),
    )
    return MultiDcConfig(
        fabric=fabric,
        segment_delays_ps=segments,
        backbone_per_spine=2,
        backbone_queue=QueueSpec(kind="ecn", capacity_bytes=megabytes(12),
                                 ecn_low_bytes=megabytes(2.5),
                                 ecn_high_bytes=megabytes(10)),
    )


@pytest.fixture()
def scenario():
    return CascadeScenario(
        degree=4, total_bytes=megabytes(12), chain=small_chain(),
        transport=TransportConfig(payload_bytes=4096),
    )


class TestMultiDcTopology:
    def test_chain_dimensions(self, sim):
        topo = build_multidc(sim, small_chain())
        assert len(topo.fabrics) == 3
        assert len(topo.backbones) == 2
        assert all(len(seg) == 4 for seg in topo.backbones)

    def test_end_to_end_delay_sums_segments(self, sim):
        topo = build_multidc(sim, small_chain())
        src = topo.hosts(0)[0]
        dst = topo.hosts(2)[0]
        one_way = topo.net.min_delay_ps(src.id, dst.id)
        # 2 long-haul hops per segment + intra-DC hops
        assert one_way > 2 * (milliseconds(1) + milliseconds(10))
        assert one_way < 2 * (milliseconds(1) + milliseconds(10)) + milliseconds(1)

    def test_all_dc_pairs_routable(self, sim):
        topo = build_multidc(sim, small_chain())
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert topo.net.min_delay_ps(
                        topo.hosts(a)[0].id, topo.hosts(b)[0].id
                    ) > 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MultiDcConfig(segment_delays_ps=())
        with pytest.raises(ConfigError):
            MultiDcConfig(segment_delays_ps=(-1,))


class TestRelayChain:
    def test_chain_delivers_everything(self, sim, transport_cfg):
        topo = build_multidc(sim, small_chain())
        src = topo.hosts(0)[0]
        relay0 = topo.hosts(0)[-1]
        relay1 = topo.hosts(1)[0]
        dst = topo.hosts(2)[0]
        done = []
        chain = build_relay_chain(
            topo.net, src, dst, 100_000, transport_cfg, [relay0, relay1],
            on_complete=lambda r: done.append(sim.now),
        )
        chain.start()
        sim.run(until=milliseconds(500))
        assert chain.completed and done
        assert chain.hops == 3
        assert chain.legs[-1].receiver.stats.bytes_received == 100_000

    def test_intermediate_backlogs_drain(self, sim, transport_cfg):
        topo = build_multidc(sim, small_chain())
        chain = build_relay_chain(
            topo.net, topo.hosts(0)[0], topo.hosts(2)[0], 50_000, transport_cfg,
            [topo.hosts(0)[-1], topo.hosts(1)[0]],
        )
        chain.start()
        sim.run(until=milliseconds(500))
        assert chain.completed
        assert chain.backlog_packets(0) == 0
        assert chain.backlog_packets(1) == 0

    def test_per_leg_windows_match_segment_bdp(self, sim, transport_cfg):
        topo = build_multidc(sim, small_chain())
        chain = build_relay_chain(
            topo.net, topo.hosts(0)[0], topo.hosts(2)[0], 50_000, transport_cfg,
            [topo.hosts(0)[-1], topo.hosts(1)[0]],
        )
        # hop 0 is intra-DC (tiny window); hop 2 spans the 10 ms segment
        assert chain.legs[0].cc.cwnd < chain.legs[1].cc.cwnd < chain.legs[2].cc.cwnd

    def test_chain_validation(self, sim, transport_cfg):
        topo = build_multidc(sim, small_chain())
        with pytest.raises(ProxyError):
            build_relay_chain(topo.net, topo.hosts(0)[0], topo.hosts(2)[0],
                              1000, transport_cfg, [])
        with pytest.raises(ProxyError):
            build_relay_chain(topo.net, topo.hosts(0)[0], topo.hosts(2)[0],
                              1000, transport_cfg,
                              [topo.hosts(0)[0]])  # relay == src


class TestCascadeExperiment:
    def test_all_schemes_complete(self, scenario):
        for scheme in ("baseline", "edge", "cascade"):
            result = run_cascade(replace(scenario, scheme=scheme))
            assert result.completed, scheme

    def test_relay_counts(self, scenario):
        assert run_cascade(replace(scenario, scheme="baseline")).relays_used == 0
        assert run_cascade(replace(scenario, scheme="edge")).relays_used == 1
        assert run_cascade(replace(scenario, scheme="cascade")).relays_used == 2

    def test_proxies_beat_baseline_on_chain(self, scenario):
        baseline = run_cascade(scenario if scenario.scheme == "baseline"
                               else replace(scenario, scheme="baseline"))
        edge = run_cascade(replace(scenario, scheme="edge"))
        cascade = run_cascade(replace(scenario, scheme="cascade"))
        assert edge.ict_ps < 0.5 * baseline.ict_ps
        assert cascade.ict_ps < 0.5 * baseline.ict_ps

    def test_cascade_recovers_near_segment_blips_locally(self, scenario):
        """The extension's claim: a blip on the first long segment is repaired
        from the DC0 relay over ~2 ms by the cascade, but over the full
        end-to-end RTT by the edge-only design."""
        blip = (0, milliseconds(1), milliseconds(3))
        # 16 MB keeps traffic crossing segment 0 when the blip lands.
        edge = run_cascade(replace(scenario, scheme="edge", blip=blip,
                                   total_bytes=megabytes(16)))
        cascade = run_cascade(replace(scenario, scheme="cascade", blip=blip,
                                      total_bytes=megabytes(16)))
        assert cascade.completed and edge.completed
        assert cascade.ict_ps < 0.5 * edge.ict_ps

    def test_blip_validation(self, scenario):
        with pytest.raises(ExperimentError):
            replace(scenario, blip=(7, 0, 1))

    def test_scheme_validation(self, scenario):
        with pytest.raises(ExperimentError):
            replace(scenario, scheme="relay-everything")
