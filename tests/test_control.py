"""The reactive control plane: weight models, weighted route computation,
and the Controller's fault-driven reconvergence."""

import pytest

from repro.config import QueueSpec, small_interdc_config
from repro.control import (
    ControlConfig,
    Controller,
    WEIGHT_MODELS,
    build_weighted_tables,
    delay_weight,
    hop_weight,
    queue_weight,
    resolve_weight_model,
)
from repro.errors import ConfigError, TopologyError
from repro.net.network import Network
from repro.net.routing import build_next_hop_tables
from repro.sim.simulator import Simulator
from repro.topology.interdc import build_interdc
from repro.units import gbps, megabytes, microseconds


def _queue(sim, name):
    return QueueSpec(kind="host", capacity_bytes=megabytes(100)).build(
        sim.rng.stream(name)
    )


def _mesh(sim, host_names, switch_names, edges):
    """Build an arbitrary topology; edges are (name_a, name_b, delay_ps)."""
    net = Network(sim)
    nodes = {}
    for name in host_names:
        nodes[name] = net.add_host(name)
    for name in switch_names:
        nodes[name] = net.add_switch(name)
    for a, b, delay in edges:
        net.connect(
            nodes[a], nodes[b], gbps(10), delay,
            queue_ab=_queue(sim, f"q:{a}->{b}"),
            queue_ba=_queue(sim, f"q:{b}->{a}"),
        )
    net.finalize()
    return net, nodes


def _diamond(sim, direct_delay_ps=microseconds(100), detour_delay_ps=microseconds(1)):
    """A—X—Y—B with a two-hop detour X—Z—Y.

    Hop count prefers the direct X—Y edge; delay prefers the detour when
    the direct edge is slow enough.
    """
    return _mesh(
        sim,
        ["a", "b"],
        ["x", "y", "z"],
        [
            ("a", "x", microseconds(1)),
            ("x", "y", direct_delay_ps),
            ("y", "b", microseconds(1)),
            ("x", "z", detour_delay_ps),
            ("z", "y", detour_delay_ps),
        ],
    )


class TestWeightModels:
    def test_registry_names(self):
        assert set(WEIGHT_MODELS) == {"hop", "delay", "queue"}

    def test_resolve_known(self):
        assert resolve_weight_model("hop") is hop_weight
        assert resolve_weight_model("delay") is delay_weight
        assert resolve_weight_model("queue") is queue_weight

    def test_resolve_unknown_raises(self):
        with pytest.raises(ConfigError):
            resolve_weight_model("wormhole")

    def test_hop_weight_is_unit(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        assert hop_weight(net, nodes["x"].id, nodes["y"].id) == 1
        assert hop_weight(net, nodes["x"].id, nodes["z"].id) == 1

    def test_delay_weight_reads_edge_delay(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim, direct_delay_ps=microseconds(100))
        assert delay_weight(net, nodes["x"].id, nodes["y"].id) == microseconds(100)

    def test_delay_weight_missing_edge_raises(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        with pytest.raises(TopologyError):
            delay_weight(net, nodes["a"].id, nodes["b"].id)

    def test_queue_weight_equals_delay_on_idle_network(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        x, y = nodes["x"].id, nodes["y"].id
        assert queue_weight(net, x, y) == delay_weight(net, x, y)


class TestWeightedTables:
    def test_hop_model_matches_bfs_builder_exactly(self):
        # The Dijkstra builder under unit weights must reproduce the BFS
        # equal-cost tables bit-for-bit (same adjacency-order hop sets),
        # so installing hop-model tables is behavior-preserving.
        sim = Simulator(seed=1)
        topo = build_interdc(sim, small_interdc_config())
        net = topo.net
        hosts = [h.id for h in net.hosts]
        assert build_weighted_tables(net, hop_weight) == build_next_hop_tables(
            net.adjacency, hosts
        )

    def test_delay_model_prefers_fast_detour(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        b = nodes["b"].id
        by_hop = build_weighted_tables(net, hop_weight)
        by_delay = build_weighted_tables(net, delay_weight)
        assert by_hop[nodes["x"].id][b] == (nodes["y"].id,)
        assert by_delay[nodes["x"].id][b] == (nodes["z"].id,)

    def test_downed_link_is_not_used(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        net.set_link_state(nodes["x"].id, nodes["y"].id, False)
        tables = build_weighted_tables(net, hop_weight)
        assert tables[nodes["x"].id][nodes["b"].id] == (nodes["z"].id,)

    def test_restricted_destinations(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        tables = build_weighted_tables(net, hop_weight,
                                       destination_ids=[nodes["a"].id])
        assert nodes["a"].id in tables[nodes["x"].id]
        assert nodes["b"].id not in tables[nodes["x"].id]


class TestControlConfig:
    def test_defaults_valid(self):
        cfg = ControlConfig()
        assert cfg.weight_model == "hop"
        assert cfg.control_delay_ps > 0

    def test_unknown_weight_model_rejected(self):
        with pytest.raises(ConfigError):
            ControlConfig(weight_model="wormhole")

    def test_negative_delays_rejected(self):
        with pytest.raises(ConfigError):
            ControlConfig(control_delay_ps=-1)
        with pytest.raises(ConfigError):
            ControlConfig(refresh_interval_ps=-1)


class TestController:
    def test_start_installs_and_is_idempotent(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        controller = Controller(sim, net)
        assert controller.start() is controller
        assert controller.start() is controller
        assert controller.installs == 1
        assert controller.reroutes == 0

    def test_linkdown_triggers_one_coalesced_reroute(self):
        sim = Simulator(seed=1)
        cfg = ControlConfig(control_delay_ps=microseconds(50))
        net, nodes = _diamond(sim)
        controller = Controller(sim, net, cfg).start()
        # One LinkDown flips both directions: the notifications coalesce
        # into a single reconvergence after the control-loop delay.
        net.set_link_state(nodes["x"].id, nodes["y"].id, False)
        sim.run(until=microseconds(200))
        assert controller.reroutes == 1
        assert controller.event_installs == [microseconds(50)]

    def test_reroute_rebuilds_direct_ports_fast_path(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        x, b = nodes["x"], nodes["b"].id
        controller = Controller(sim, net).start()
        assert x.direct_ports[b] is x.ports[nodes["y"].id]
        net.set_link_state(x.id, nodes["y"].id, False)
        sim.run(until=microseconds(200))
        # The single-candidate bypass now points at the detour; a stale
        # entry here would keep forwarding into the dead link forever.
        assert controller.reroutes == 1
        assert x.direct_ports[b] is x.ports[nodes["z"].id]

    def test_unreachable_destination_keeps_stale_route(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        x, b = nodes["x"], nodes["b"].id
        controller = Controller(sim, net).start()
        net.set_link_state(x.id, nodes["y"].id, False)
        net.set_link_state(x.id, nodes["z"].id, False)
        sim.run(until=microseconds(200))
        # B is unreachable from X; the merge keeps the last-known entry so
        # in-flight traffic drops at a downed port instead of raising
        # RoutingError and killing the whole run.
        assert controller.reroutes >= 1
        assert b in x.routing.tables[x.id]

    def test_link_recovery_restores_original_route(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        x, b = nodes["x"], nodes["b"].id
        controller = Controller(sim, net).start()
        net.set_link_state(x.id, nodes["y"].id, False)
        sim.run(until=microseconds(200))
        net.set_link_state(x.id, nodes["y"].id, True)
        sim.run(until=microseconds(400))
        assert controller.reroutes == 2
        assert x.direct_ports[b] is x.ports[nodes["y"].id]

    def test_redundant_state_change_does_not_notify(self):
        sim = Simulator(seed=1)
        net, nodes = _diamond(sim)
        controller = Controller(sim, net).start()
        # Already up: setting up again must not schedule a reconvergence.
        net.set_link_state(nodes["x"].id, nodes["y"].id, True)
        sim.run(until=microseconds(200))
        assert controller.reroutes == 0

    def test_periodic_refresh(self):
        sim = Simulator(seed=1)
        cfg = ControlConfig(refresh_interval_ps=microseconds(100))
        net, nodes = _diamond(sim)
        controller = Controller(sim, net, cfg).start()
        sim.run(until=microseconds(350))
        assert controller.refreshes == 3
        # Refreshes reinstall but are not fault reroutes.
        assert controller.reroutes == 0
