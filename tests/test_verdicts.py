"""The automated claim scorecard."""

import pytest

from repro.experiments.verdicts import Scorecard, evaluate


class TestScorecard:
    def test_check_records_verdicts(self):
        card = Scorecard()
        card.check("a", "s1", True, "e1")
        card.check("b", "s2", False, "e2")
        assert card.passed == 1
        assert len(card.verdicts) == 2

    def test_render_contains_counts_and_rows(self):
        card = Scorecard()
        card.check("claim-x", "src-y", True, "evid-z")
        text = card.render()
        assert "1/1 claims reproduced" in text
        assert "PASS" in text and "claim-x" in text

    def test_render_marks_failures(self):
        card = Scorecard()
        card.check("bad", "src", False, "nope")
        assert "FAIL" in card.render()


class TestEvaluate:
    @pytest.fixture(scope="class")
    def card(self):
        return evaluate(full=False)

    def test_all_claims_reproduce_at_reduced_scale(self, card):
        failing = [v.claim for v in card.verdicts if not v.passed]
        assert not failing, f"claims failing: {failing}"

    def test_covers_every_evaluation_section(self, card):
        sources = " ".join(v.source for v in card.verdicts)
        for anchor in ("§4.2", "§3", "§5", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5"):
            assert anchor in sources

    def test_evidence_is_populated(self, card):
        assert all(v.evidence for v in card.verdicts)
