"""Streaming CSV trace sink."""

import csv
import json

import pytest

from repro.errors import TracingError
from repro.net.packet import make_data
from repro.sim.simulator import Simulator
from repro.sim.tracing import CsvTracer, RecordingTracer
from repro.transport.connection import Connection
from repro.units import milliseconds
from tests.conftest import build_pair


class TestCsvTracer:
    def test_records_written_as_rows(self, tmp_path):
        path = tmp_path / "trace.csv"
        with CsvTracer(path) as tracer:
            sim = Simulator(seed=0, tracer=tracer)
            sim.schedule(5, lambda: sim.trace("srcA", "drop", flow=1, seq=2))
            sim.run()
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 1
        row = rows[0]
        assert (row["time_ps"], row["source"], row["kind"]) == ("5", "srcA", "drop")
        assert json.loads(row["details"]) == {"flow": 1, "seq": 2}

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "trace.csv"
        with CsvTracer(path, kinds={"keep"}) as tracer:
            sim = Simulator(seed=0, tracer=tracer)
            sim.schedule(1, lambda: sim.trace("s", "keep"))
            sim.schedule(2, lambda: sim.trace("s", "discard"))
            sim.run()
            assert tracer.rows_written == 1

    def test_traces_real_drops(self, tmp_path):
        from tests.conftest import build_incast_star
        from repro.units import kilobytes

        path = tmp_path / "drops.csv"
        with CsvTracer(path, kinds={"drop"}) as tracer:
            sim = Simulator(seed=0, tracer=tracer)
            # two senders at line rate into one 50KB bottleneck: guaranteed drops
            net, senders, rx = build_incast_star(sim, 2, bottleneck_capacity=kilobytes(50))
            rx.register_handler(1, lambda p: None)
            rx.register_handler(2, lambda p: None)
            for flow, sender in enumerate(senders, start=1):
                for seq in range(100):
                    sender.send(make_data(flow, seq, sender.id, rx.id, payload_bytes=1000))
            sim.run(until=milliseconds(10))
            assert tracer.rows_written > 0

    def test_creates_parent_dirs_and_closes_idempotently(self, tmp_path):
        tracer = CsvTracer(tmp_path / "deep" / "t.csv")
        tracer.close()
        tracer.close()
        assert (tmp_path / "deep" / "t.csv").exists()

    def test_record_after_close_raises(self, tmp_path):
        tracer = CsvTracer(tmp_path / "t.csv")
        tracer.record(1, "s", "k")
        tracer.close()
        assert tracer.closed
        with pytest.raises(TracingError, match="closed"):
            tracer.record(2, "s", "k")

    def test_exceptional_exit_still_flushes_rows(self, tmp_path):
        path = tmp_path / "t.csv"
        with pytest.raises(RuntimeError):
            with CsvTracer(path) as tracer:
                tracer.record(1, "srcA", "drop", seq=4)
                raise RuntimeError("body blew up")
        assert tracer.closed
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 1
        assert rows[0]["source"] == "srcA"


class TestRecordingTracerBound:
    def test_unbounded_records_is_a_plain_list(self):
        tracer = RecordingTracer()
        tracer.record(1, "s", "k")
        assert tracer.of_kind("k") == tracer.records
        assert tracer.dropped == 0

    def test_max_records_drops_oldest_and_counts(self):
        tracer = RecordingTracer(max_records=3)
        for t in range(5):
            tracer.record(t, "s", "k", n=t)
        assert len(tracer.records) == 3
        assert [r.time for r in tracer.records] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_kind_filter_does_not_count_as_dropped(self):
        tracer = RecordingTracer(kinds={"keep"}, max_records=2)
        tracer.record(1, "s", "discard")
        tracer.record(2, "s", "keep")
        assert tracer.dropped == 0
        assert len(tracer.records) == 1

    def test_max_records_validation(self):
        with pytest.raises(TracingError):
            RecordingTracer(max_records=0)
