"""Streaming CSV trace sink."""

import csv
import json

from repro.net.packet import make_data
from repro.sim.simulator import Simulator
from repro.sim.tracing import CsvTracer
from repro.transport.connection import Connection
from repro.units import milliseconds
from tests.conftest import build_pair


class TestCsvTracer:
    def test_records_written_as_rows(self, tmp_path):
        path = tmp_path / "trace.csv"
        with CsvTracer(path) as tracer:
            sim = Simulator(seed=0, tracer=tracer)
            sim.schedule(5, lambda: sim.trace("srcA", "drop", flow=1, seq=2))
            sim.run()
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 1
        row = rows[0]
        assert (row["time_ps"], row["source"], row["kind"]) == ("5", "srcA", "drop")
        assert json.loads(row["details"]) == {"flow": 1, "seq": 2}

    def test_kind_filter(self, tmp_path):
        path = tmp_path / "trace.csv"
        with CsvTracer(path, kinds={"keep"}) as tracer:
            sim = Simulator(seed=0, tracer=tracer)
            sim.schedule(1, lambda: sim.trace("s", "keep"))
            sim.schedule(2, lambda: sim.trace("s", "discard"))
            sim.run()
            assert tracer.rows_written == 1

    def test_traces_real_drops(self, tmp_path):
        from tests.conftest import build_incast_star
        from repro.units import kilobytes

        path = tmp_path / "drops.csv"
        with CsvTracer(path, kinds={"drop"}) as tracer:
            sim = Simulator(seed=0, tracer=tracer)
            # two senders at line rate into one 50KB bottleneck: guaranteed drops
            net, senders, rx = build_incast_star(sim, 2, bottleneck_capacity=kilobytes(50))
            rx.register_handler(1, lambda p: None)
            rx.register_handler(2, lambda p: None)
            for flow, sender in enumerate(senders, start=1):
                for seq in range(100):
                    sender.send(make_data(flow, seq, sender.id, rx.id, payload_bytes=1000))
            sim.run(until=milliseconds(10))
            assert tracer.rows_written > 0

    def test_creates_parent_dirs_and_closes_idempotently(self, tmp_path):
        tracer = CsvTracer(tmp_path / "deep" / "t.csv")
        tracer.close()
        tracer.close()
        assert (tmp_path / "deep" / "t.csv").exists()
