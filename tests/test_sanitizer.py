"""Runtime sanitizer: conservation, invariant checks, sanitized scheme runs."""

import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.config import TransportConfig, small_interdc_config
from repro.errors import SanitizerError
from repro.experiments.runner import (
    SCHEMES,
    IncastScenario,
    RunOptions,
    run_incast,
)
from repro.faults import blackhole_plan
from repro.net.packet import make_data
from repro.proxy.streamlined import StreamlinedProxy
from repro.proxy.trimless import TrimlessStreamlinedProxy
from repro.sim.simulator import Simulator
from repro.units import kilobytes, milliseconds, seconds
from tests.conftest import build_pair

#: Insertion order {7, 3, 11, 5} iterates as [11, 3, 5, 7] on CPython —
#: a set whose natural order is unsorted, so the sorted-iteration
#: regression tests below actually discriminate.
SCRAMBLED_FLOWS = (7, 3, 11, 5)


def _scenario(scheme: str, **overrides) -> IncastScenario:
    defaults = dict(
        scheme=scheme,
        degree=4,
        total_bytes=kilobytes(400),
        interdc=small_interdc_config(),
        transport=TransportConfig(max_consecutive_timeouts=8),
        horizon_ps=seconds(2),
    )
    defaults.update(overrides)
    return IncastScenario(**defaults)


class TestInstallation:
    def test_install_returns_self_and_registers(self):
        sim = Simulator(seed=1)
        san = Sanitizer().install(sim)
        assert sim.sanitizer is san

    def test_double_install_raises(self):
        sim = Simulator(seed=1)
        Sanitizer().install(sim)
        with pytest.raises(SanitizerError):
            Sanitizer().install(sim)


class TestConservation:
    def test_quiet_pair_run_balances(self, sim):
        net, a, b = build_pair(sim)
        san = Sanitizer().install(sim)
        b.register_handler(1, lambda packet: None)
        a.send(make_data(1, 0, a.id, b.id, 1000))
        sim.run()
        report = san.finish(net)
        assert report.injected_packets == 1
        assert report.delivered_packets == 1
        assert report.in_transit_packets == 0

    def test_packet_smuggled_past_the_nic_trips_conservation(self, sim):
        # Injecting straight into the NIC port bypasses Host.send, the sole
        # accounted injection point: the packet arrives without ever having
        # been injected, which is exactly the imbalance finish() must catch.
        net, a, b = build_pair(sim)
        san = Sanitizer().install(sim)
        assert a.nic is not None
        a.nic.send(make_data(1, 0, a.id, b.id, 1000))
        sim.run()
        with pytest.raises(SanitizerError, match="conservation"):
            san.finish(net)

    def test_clock_backwards_detected_at_pop(self):
        sim = Simulator(seed=1)
        Sanitizer().install(sim)
        # Simulator.schedule_at validates against the past, so sneak the
        # event in through the raw scheduler, from the future looking back.
        sim.schedule(100, lambda: sim.scheduler.schedule_at(50, lambda: None))
        with pytest.raises(SanitizerError, match="backwards"):
            sim.run()


class TestUnitChecks:
    class _Packet:
        size_bytes = 100

    class _OverfullQueue:
        capacity_bytes = 100
        occupied_bytes = 200

    class _Cc:
        cwnd = 10
        min_cwnd = 1

    class _BrokenSender:
        label = "tx0"
        pipe = -1
        cum_ack = 0
        total_packets = 10
        cc = None

    def test_accepted_enqueue_over_capacity_raises(self):
        san = Sanitizer()
        with pytest.raises(SanitizerError, match="over capacity"):
            san.on_offer(self._OverfullQueue(), self._Packet(), False, 100)

    def test_negative_pipe_raises(self):
        sender = self._BrokenSender()
        sender.cc = self._Cc()
        with pytest.raises(SanitizerError, match="pipe went negative"):
            Sanitizer().check_sender(sender)

    def test_cwnd_below_floor_raises(self):
        sender = self._BrokenSender()
        sender.pipe = 0
        cc = self._Cc()
        cc.cwnd = 0
        sender.cc = cc
        with pytest.raises(SanitizerError, match="min_cwnd"):
            Sanitizer().check_sender(sender)


class TestSanitizedSchemes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_conserves_packets(self, scheme):
        result = run_incast(_scenario(scheme), options=RunOptions(sanitize=True))
        tally = result.conservation
        assert tally is not None
        assert tally["injected_packets"] > 0
        assert tally["delivered_packets"] > 0
        # Runs stop the moment the last flow completes, so trailing ACKs may
        # still be serializing; finish() has already proven they balance.
        assert tally["in_transit_packets"] >= 0
        assert tally["checks_passed"] > 0

    def test_unsanitized_run_has_no_tally(self):
        result = run_incast(_scenario("baseline"))
        assert result.conservation is None

    def test_proxy_failover_under_blackhole_conserves(self):
        plan = blackhole_plan(
            at_ps=0, duration_ps=milliseconds(1), drop_fraction=0.3
        )
        result = run_incast(
            _scenario("proxy-failover", faults=plan),
            options=RunOptions(sanitize=True),
        )
        tally = result.conservation
        assert tally is not None
        assert tally["faults_applied"] >= 1
        assert tally["injected_packets"] > 0


class TestSortedFlowChurn:
    """Proxy crash/restart must walk flows in sorted order (regression).

    ``crash()``/``restart()`` used to iterate ``self.flows`` (a set)
    directly, making handler and detector churn depend on hash order.
    """

    @pytest.mark.parametrize("proxy_cls", [StreamlinedProxy, TrimlessStreamlinedProxy])
    def test_crash_and_restart_iterate_sorted(self, sim, proxy_cls, monkeypatch):
        net, a, b = build_pair(sim)
        proxy = proxy_cls(sim, a)
        for flow_id in SCRAMBLED_FLOWS:
            proxy.attach_flow(flow_id)

        unregistered: list[int] = []
        registered: list[int] = []
        orig_unregister = a.unregister_handler
        orig_register = a.register_handler

        def record_unregister(flow_id):
            unregistered.append(flow_id)
            orig_unregister(flow_id)

        def record_register(flow_id, handler):
            registered.append(flow_id)
            orig_register(flow_id, handler)

        monkeypatch.setattr(a, "unregister_handler", record_unregister)
        monkeypatch.setattr(a, "register_handler", record_register)

        proxy.crash()
        assert unregistered == sorted(SCRAMBLED_FLOWS)
        proxy.restart()
        assert registered == sorted(SCRAMBLED_FLOWS)
