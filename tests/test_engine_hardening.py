"""Crash-proof experiment engine: deadlines, retries, quarantine."""

import os
import signal
import time
from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.parallel import (
    ExperimentEngine,
    ResultCache,
    RunFailure,
    run_parallel_guarded,
)
from repro.experiments.runner import IncastResult, IncastScenario
from repro.experiments.sweeps import sweep_digest
from repro.faults import CrashRun, FaultPlan, StallRun, proxy_crash_plan
from repro.units import kilobytes, microseconds, seconds

HAS_SIGALRM = hasattr(signal, "SIGALRM")


def _tiny(**overrides) -> IncastScenario:
    defaults = dict(
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
        horizon_ps=seconds(2),
    )
    defaults.update(overrides)
    return IncastScenario(**defaults)


# Top-level (picklable) work functions for the pool tests.
def _square(x: int) -> int:
    return x * x


def _raise_always(x: int) -> int:
    raise ValueError(f"deliberate failure for item {x}")


def _stall(x: int) -> int:
    time.sleep(60.0)
    return x


def _raise_on_two(x: int) -> int:
    if x == 2:
        raise ValueError("item two is cursed")
    return x * x


def _die_on_three(x: int) -> int:
    if x == 3:
        os._exit(13)  # hard crash: no exception, no cleanup
    return x * x


def _pool_usable() -> bool:
    """Probe: can this platform actually start a worker process?

    Called from inside tests, never at import time — forking while pytest
    is still collecting modules can deadlock the collector.
    """
    try:
        from concurrent.futures import ProcessPoolExecutor

        from repro.experiments.parallel import _pool_context

        with ProcessPoolExecutor(max_workers=1, mp_context=_pool_context()) as pool:
            return pool.submit(_square, 2).result() == 4
    except Exception:  # noqa: BLE001 - any failure means "no pool here"
        return False


class TestRunParallelGuarded:
    def test_all_ok_matches_plain_map(self):
        out = run_parallel_guarded(_square, [3, 1, 2], workers=1)
        assert [s for s, *_ in out] == ["ok"] * 3
        assert [payload for _, payload, *_ in out] == [9, 1, 4]

    def test_exception_is_retried_then_quarantined(self):
        out = run_parallel_guarded(
            _raise_always, [7], workers=1, max_attempts=3, backoff_s=0.001
        )
        status, message, attempts, elapsed = out[0]
        assert status == "exception"
        assert "deliberate failure for item 7" in message
        assert attempts == 3
        assert elapsed >= 0.0

    def test_one_bad_item_does_not_sink_the_batch(self):
        out = run_parallel_guarded(
            _raise_on_two, [1, 2, 3], workers=1, max_attempts=1
        )
        assert [s for s, *_ in out] == ["ok", "exception", "ok"]
        assert out[0][1] == 1 and out[2][1] == 9

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM deadlines")
    def test_timeout_quarantined_without_retry(self):
        out = run_parallel_guarded(
            _stall, [1], workers=1, timeout_s=0.2, max_attempts=3
        )
        status, message, attempts, _ = out[0]
        assert status == "timeout"
        assert "deadline" in message
        assert attempts == 1  # timeouts are never retried

    def test_worker_crash_spares_the_other_items(self):
        if not _pool_usable():
            pytest.skip("no process pool available")
        out = run_parallel_guarded(_die_on_three, [0, 1, 2, 3, 4, 5], workers=2)
        assert len(out) == 6
        statuses = [s for s, *_ in out]
        assert statuses.count("ok") >= 4  # everyone but the crasher (+ cohort)
        assert out[3][0] == "worker-crash"
        for i in (0, 1, 2, 4, 5):
            if out[i][0] == "ok":
                assert out[i][1] == i * i


class TestEngineValidation:
    def test_rejects_bad_guard_parameters(self):
        with pytest.raises(ExperimentError):
            ExperimentEngine(run_timeout_s=0)
        with pytest.raises(ExperimentError):
            ExperimentEngine(max_attempts=0)
        with pytest.raises(ExperimentError):
            ExperimentEngine(retry_backoff_s=-1.0)


class TestEngineQuarantine:
    def _crash_scenario(self, **overrides):
        plan = FaultPlan((CrashRun(at_ps=0, message="test: deliberate failure"),))
        return _tiny(faults=plan, **overrides)

    def test_raising_run_becomes_positional_failure(self):
        engine = ExperimentEngine(max_attempts=2, retry_backoff_s=0.001)
        batch = [_tiny(seed=1), self._crash_scenario(seed=2), _tiny(seed=3)]
        out = engine.run_incasts_detailed(batch)
        assert isinstance(out[0], IncastResult)
        assert isinstance(out[2], IncastResult)
        failure = out[1]
        assert isinstance(failure, RunFailure)
        assert failure.kind == "exception"
        assert failure.attempts == 2
        assert "deliberate failure" in failure.message
        assert engine.stats.failures == 1
        assert engine.stats.retries == 1

    @pytest.mark.skipif(not HAS_SIGALRM, reason="needs SIGALRM deadlines")
    def test_stalling_run_hits_the_deadline(self):
        engine = ExperimentEngine(run_timeout_s=0.2, max_attempts=2)
        stall = _tiny(seed=4, faults=FaultPlan(
            (StallRun(at_ps=0, wall_seconds=60.0),)
        ))
        out = engine.run_incasts_detailed([_tiny(seed=5), stall])
        assert isinstance(out[0], IncastResult)
        assert isinstance(out[1], RunFailure)
        assert out[1].kind == "timeout"
        assert out[1].attempts == 1

    def test_run_incasts_raises_on_failure(self):
        engine = ExperimentEngine(max_attempts=1)
        with pytest.raises(ExperimentError, match="deliberate failure"):
            engine.run_incasts([self._crash_scenario(seed=6)])

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache, max_attempts=1)
        scenario = self._crash_scenario(seed=7)
        first = engine.run_incasts_detailed([scenario])
        assert isinstance(first[0], RunFailure)
        again = engine.run_incasts_detailed([scenario])
        assert isinstance(again[0], RunFailure)
        assert engine.stats.cache_hits == 0
        assert engine.stats.cache_misses == 2

    def test_successes_alongside_failures_are_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(cache=cache, max_attempts=1)
        batch = [_tiny(seed=8), self._crash_scenario(seed=9)]
        engine.run_incasts_detailed(batch)
        rerun = engine.run_incasts_detailed(batch)
        assert isinstance(rerun[0], IncastResult)
        assert rerun[0].from_cache
        assert engine.stats.cache_hits == 1


class TestFaultSweepDigest:
    def test_digest_identical_across_worker_counts(self):
        from repro.experiments.faultsweep import proxy_crash_sweep

        kwargs = dict(
            crash_times_ps=(microseconds(10),),
            schemes=("baseline", "streamlined", "proxy-failover"),
            reps=1,
        )
        serial = proxy_crash_sweep(
            engine=ExperimentEngine(workers=1), **kwargs
        )
        pooled = proxy_crash_sweep(
            engine=ExperimentEngine(workers=2), **kwargs
        )
        assert sweep_digest(serial) == sweep_digest(pooled)

    def test_failures_change_the_digest(self):
        from repro.experiments.faultsweep import fault_plan_sweep

        healthy = fault_plan_sweep(
            FaultPlan(), schemes=("baseline",), reps=1,
            engine=ExperimentEngine(workers=1),
        )
        crashing = fault_plan_sweep(
            FaultPlan((CrashRun(at_ps=0, message="boom"),)),
            schemes=("baseline",), reps=1,
            engine=ExperimentEngine(workers=1, max_attempts=1),
        )
        assert crashing[0].schemes["baseline"].failures == 1
        assert sweep_digest(healthy) != sweep_digest(crashing)
