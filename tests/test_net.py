"""Ports, nodes, routing, and the network container."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.net.network import Network
from repro.net.node import Host
from repro.net.packet import make_data
from repro.net.routing import EcmpRouting, SprayRouting, build_next_hop_tables
from repro.sim.simulator import Simulator
from repro.units import gbps, microseconds, serialization_delay_ps
from tests.conftest import build_pair


class TestOutputPortTiming:
    def test_store_and_forward_latency(self, sim):
        net, a, b = build_pair(sim, rate_bps=gbps(10), delay_ps=microseconds(1))
        got = []
        b.register_handler(1, lambda p: got.append(sim.now))
        a.send(make_data(1, 0, a.id, b.id, payload_bytes=1000))
        sim.run()
        # Two hops (a->switch, switch->b): 2 serializations + 2 propagations.
        tx = serialization_delay_ps(1064, gbps(10))
        assert got == [2 * tx + 2 * microseconds(1)]

    def test_back_to_back_serialization(self, sim):
        net, a, b = build_pair(sim, rate_bps=gbps(10), delay_ps=0)
        got = []
        b.register_handler(1, lambda p: got.append(sim.now))
        for seq in range(3):
            a.send(make_data(1, seq, a.id, b.id, payload_bytes=1000))
        sim.run()
        tx = serialization_delay_ps(1064, gbps(10))
        # First packet: 2 serializations; each next: +1 serialization (pipelined).
        assert got == [2 * tx, 3 * tx, 4 * tx]

    def test_tx_counters(self, sim):
        net, a, b = build_pair(sim)
        b.register_handler(1, lambda p: None)
        a.send(make_data(1, 0, a.id, b.id, payload_bytes=500))
        sim.run()
        assert a.nic.tx_packets == 1
        assert a.nic.tx_bytes == 564


class TestHostDemux:
    def test_delivers_to_registered_handler(self, sim):
        net, a, b = build_pair(sim)
        seqs = []
        b.register_handler(7, lambda p: seqs.append(p.seq))
        a.send(make_data(7, 3, a.id, b.id, payload_bytes=10))
        sim.run()
        assert seqs == [3]

    def test_stray_packets_counted(self, sim):
        net, a, b = build_pair(sim)
        a.send(make_data(99, 0, a.id, b.id, payload_bytes=10))
        sim.run()
        assert b.stray_packets == 1

    def test_duplicate_handler_rejected(self, sim):
        net, a, b = build_pair(sim)
        b.register_handler(1, lambda p: None)
        with pytest.raises(TopologyError):
            b.register_handler(1, lambda p: None)

    def test_unregister_is_idempotent(self, sim):
        net, a, b = build_pair(sim)
        b.register_handler(1, lambda p: None)
        b.unregister_handler(1)
        b.unregister_handler(1)
        b.register_handler(1, lambda p: None)  # can re-register

    def test_host_is_single_homed(self, sim):
        net = Network(sim)
        a = net.add_host("a")
        s1 = net.add_switch("s1")
        s2 = net.add_switch("s2")
        from repro.config import QueueSpec
        spec = QueueSpec(kind="host", capacity_bytes=1_000_000)
        net.connect(a, s1, gbps(1), 0, queue_ab=spec.build(None), queue_ba=spec.build(None))
        with pytest.raises(TopologyError):
            net.connect(a, s2, gbps(1), 0, queue_ab=spec.build(None), queue_ba=spec.build(None))

    def test_unconnected_host_cannot_send(self, sim):
        net = Network(sim)
        a = net.add_host("a")
        with pytest.raises(TopologyError):
            a.send(make_data(1, 0, a.id, 99, payload_bytes=1))


class TestNextHopTables:
    def test_line_topology(self):
        #  0 - 1 - 2 - 3   (host 0, switches 1-2, host 3)
        adjacency = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        tables = build_next_hop_tables(adjacency, [0, 3])
        assert tables[1][3] == (2,)
        assert tables[2][0] == (1,)
        assert tables[1][0] == (0,)

    def test_equal_cost_multipath(self):
        # Diamond: host 0 - {1,2} - 3 (host).
        adjacency = {0: [1, 2], 1: [0, 3], 2: [0, 3], 3: [1, 2]}
        tables = build_next_hop_tables(adjacency, [3])
        assert set(tables[0][3]) == {1, 2}

    def test_unreachable_destination_absent(self):
        adjacency = {0: [1], 1: [0], 2: []}
        tables = build_next_hop_tables(adjacency, [2])
        assert 2 not in tables[0]


class TestRoutingStrategies:
    def _diamond(self, sim):
        # a - mid - {s1, s2} - tail - b : two equal-cost paths in the middle.
        net = Network(sim)
        a = net.add_host("a")
        b = net.add_host("b")
        s1 = net.add_switch("s1")
        s2 = net.add_switch("s2")
        mid = net.add_switch("mid")
        tail = net.add_switch("tail")
        from repro.config import QueueSpec
        host = QueueSpec(kind="host", capacity_bytes=10_000_000)
        sw = QueueSpec(kind="droptail", capacity_bytes=10_000_000)
        net.connect(a, mid, gbps(10), 0, queue_ab=host.build(None), queue_ba=sw.build(None))
        net.connect(mid, s1, gbps(10), 0, queue_ab=sw.build(None), queue_ba=sw.build(None))
        net.connect(mid, s2, gbps(10), 0, queue_ab=sw.build(None), queue_ba=sw.build(None))
        net.connect(s1, tail, gbps(10), 0, queue_ab=sw.build(None), queue_ba=sw.build(None))
        net.connect(s2, tail, gbps(10), 0, queue_ab=sw.build(None), queue_ba=sw.build(None))
        net.connect(tail, b, gbps(10), 0, queue_ab=sw.build(None), queue_ba=host.build(None))
        return net, a, b, mid, s1, s2

    def test_spraying_uses_both_paths(self, sim):
        net, a, b, mid, s1, s2 = self._diamond(sim)
        net.finalize(routing="spray")
        b.register_handler(1, lambda p: None)
        for seq in range(200):
            a.send(make_data(1, seq, a.id, b.id, payload_bytes=100))
        sim.run()
        via_s1 = mid.ports[s1.id].tx_packets
        via_s2 = mid.ports[s2.id].tx_packets
        assert via_s1 + via_s2 == 200
        assert via_s1 > 30 and via_s2 > 30  # roughly balanced

    def test_ecmp_pins_flow_to_one_path(self, sim):
        net, a, b, mid, s1, s2 = self._diamond(sim)
        net.finalize(routing="ecmp")
        b.register_handler(1, lambda p: None)
        for seq in range(50):
            a.send(make_data(1, seq, a.id, b.id, payload_bytes=100))
        sim.run()
        used = sorted(p for p in (mid.ports[s1.id].tx_packets, mid.ports[s2.id].tx_packets))
        assert used == [0, 50]

    def test_missing_route_raises(self, sim):
        net, a, b, mid, s1, s2 = self._diamond(sim)
        net.finalize()
        pkt = make_data(1, 0, a.id, 424242, payload_bytes=10)
        with pytest.raises(RoutingError):
            mid.receive(pkt)

    def test_unknown_strategy_rejected(self, sim):
        net, *_ = self._diamond(sim)
        with pytest.raises(TopologyError):
            net.finalize(routing="teleport")


class TestNetworkQueries:
    def test_min_delay_sums_edges(self, sim):
        net, a, b = build_pair(sim, delay_ps=microseconds(3))
        assert net.min_delay_ps(a.id, b.id) == 2 * microseconds(3)
        assert net.min_delay_ps(a.id, a.id) == 0

    def test_path_rtt_via_stops(self, sim):
        sim2 = Simulator()
        net = Network(sim2)
        from repro.config import QueueSpec
        host = QueueSpec(kind="host", capacity_bytes=1_000_000)
        hosts = [net.add_host(f"h{i}") for i in range(3)]
        s = net.add_switch("s")
        for h in hosts:
            net.connect(h, s, gbps(10), microseconds(1),
                        queue_ab=host.build(None), queue_ba=host.build(None))
        net.finalize()
        direct = net.path_rtt_ps(hosts[0].id, hosts[2].id)
        via = net.path_rtt_ps(hosts[0].id, hosts[2].id, via=[hosts[1].id])
        assert direct == 4 * microseconds(1)
        assert via == 8 * microseconds(1)

    def test_disconnected_raises(self, sim):
        net = Network(sim)
        a = net.add_host("a")
        b = net.add_host("b")
        with pytest.raises(RoutingError):
            net.min_delay_ps(a.id, b.id)

    def test_flow_ids_unique(self, sim):
        net = Network(sim)
        assert net.new_flow_id() != net.new_flow_id()

    def test_invalid_link_params(self, sim):
        net = Network(sim)
        a = net.add_host("a")
        b = net.add_host("b")
        with pytest.raises(TopologyError):
            net.connect(a, b, 0, 0, queue_ab=None, queue_ba=None)

    def test_no_changes_after_finalize(self, sim):
        net, a, b = build_pair(sim)
        with pytest.raises(TopologyError):
            net.add_host("late")
