"""Gap-based loss detection, reorder estimation, and ground-truth scoring."""

import pytest

from repro.detection.evaluation import evaluate_detector, synthesize_stream
from repro.detection.lossdetector import DetectorConfig, FlowTracker, GapLossDetector
from repro.detection.reorder import ReorderingEstimator
from repro.errors import ConfigError, WorkloadError
from repro.units import microseconds


def cfg(**kw):
    defaults = dict(max_tracked_gaps=64, packet_threshold=3,
                    reorder_window_ps=microseconds(5), evict_policy="lost")
    defaults.update(kw)
    return DetectorConfig(**defaults)


class TestFlowTracker:
    def collect(self, tracker_cfg):
        declared = []
        tracker = FlowTracker(tracker_cfg, lambda seq, ts: declared.append(seq))
        return tracker, declared

    def feed_inorder(self, tracker, seqs, step_ps=microseconds(1)):
        for i, seq in enumerate(seqs):
            tracker.on_data(seq, now=(i + 1) * step_ps, packet_ts=i, is_retransmit=False)

    def test_no_gaps_no_losses(self):
        tracker, declared = self.collect(cfg())
        self.feed_inorder(tracker, range(10))
        assert declared == []
        assert tracker.pending_gaps() == 0

    def test_persistent_gap_declared_lost(self):
        tracker, declared = self.collect(cfg())
        self.feed_inorder(tracker, [0, 1, 3, 4, 5, 6, 7, 8, 9, 10])
        assert declared == [2]

    def test_gap_needs_both_age_and_depth(self):
        # Only 2 packets arrive after the gap: below the packet threshold.
        tracker, declared = self.collect(cfg(packet_threshold=5))
        self.feed_inorder(tracker, [0, 2, 3])
        assert declared == []

    def test_reordered_packet_clears_gap(self):
        tracker, declared = self.collect(cfg())
        # seq 2 arrives late but within the window: no declaration
        tracker.on_data(0, microseconds(1), 0, False)
        tracker.on_data(1, microseconds(2), 1, False)
        tracker.on_data(3, microseconds(3), 3, False)
        tracker.on_data(2, microseconds(4), 2, False)  # late arrival fills gap
        tracker.on_data(4, microseconds(20), 4, False)
        tracker.on_data(5, microseconds(21), 5, False)
        tracker.on_data(6, microseconds(22), 6, False)
        assert declared == []

    def test_flush_declares_aged_gaps_without_traffic(self):
        tracker, declared = self.collect(cfg(packet_threshold=100))
        self.feed_inorder(tracker, [0, 2])
        tracker.flush(microseconds(100))
        assert declared == [1]

    def test_eviction_as_lost(self):
        tracker, declared = self.collect(cfg(max_tracked_gaps=2, packet_threshold=100,
                                             reorder_window_ps=microseconds(10**6)))
        # jump creates 3 gaps; capacity 2 -> the oldest is evicted as lost
        tracker.on_data(0, 1, 0, False)
        tracker.on_data(4, 2, 4, False)
        assert tracker.evicted == 1
        assert declared == [1]

    def test_eviction_as_forget(self):
        tracker, declared = self.collect(cfg(max_tracked_gaps=2, packet_threshold=100,
                                             reorder_window_ps=microseconds(10**6),
                                             evict_policy="forget"))
        tracker.on_data(0, 1, 0, False)
        tracker.on_data(4, 2, 4, False)
        assert tracker.evicted == 1
        assert declared == []

    def test_false_positive_counted_on_original_arrival(self):
        tracker, declared = self.collect(cfg(packet_threshold=1,
                                             reorder_window_ps=microseconds(1)))
        tracker.on_data(0, microseconds(1), 0, False)
        tracker.on_data(2, microseconds(10), 2, False)
        tracker.on_data(3, microseconds(20), 3, False)
        assert declared == [1]
        # original copy of 1 limps in much later: that's a false positive
        tracker.on_data(1, microseconds(30), 1, False)
        assert tracker.false_positives == 1

    def test_retransmit_arrival_not_counted_as_fp(self):
        tracker, declared = self.collect(cfg(packet_threshold=1,
                                             reorder_window_ps=microseconds(1)))
        tracker.on_data(0, microseconds(1), 0, False)
        tracker.on_data(2, microseconds(10), 2, False)
        tracker.on_data(3, microseconds(20), 3, False)
        tracker.on_data(1, microseconds(30), 1, True)  # the NACK-paid retx
        assert tracker.false_positives == 0

    def test_registry_reuses_trackers(self):
        detector = GapLossDetector(cfg())
        t1 = detector.tracker(1, lambda s, ts: None)
        t2 = detector.tracker(1, lambda s, ts: None)
        assert t1 is t2
        assert len(detector) == 1
        detector.remove(1)
        assert len(detector) == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            DetectorConfig(max_tracked_gaps=0)
        with pytest.raises(ConfigError):
            DetectorConfig(evict_policy="shrug")


class TestReorderingEstimator:
    def test_in_order_stream(self):
        est = ReorderingEstimator()
        for seq in range(10):
            est.on_arrival(seq)
        assert est.late == 0
        assert est.late_fraction == 0.0
        assert est.outstanding == 0

    def test_single_displacement_depth(self):
        est = ReorderingEstimator()
        for seq in [0, 1, 3, 4, 2]:
            est.on_arrival(seq)
        assert est.late == 1
        assert est.max_depth == 2  # 3 and 4 overtook 2
        assert est.mean_depth == 2

    def test_lost_packets_stay_outstanding(self):
        est = ReorderingEstimator()
        for seq in [0, 2, 3]:
            est.on_arrival(seq)
        assert est.outstanding == 1

    def test_duplicates_ignored(self):
        est = ReorderingEstimator()
        for seq in [0, 1, 1, 2]:
            est.on_arrival(seq)
        assert est.late == 0


class TestSynthesizeStream:
    def test_no_loss_no_reorder_is_identity(self):
        events, lost = synthesize_stream(50, loss_rate=0, reorder_rate=0, reorder_depth=0)
        assert lost == set()
        assert [e.seq for e in events] == list(range(50))
        assert all(events[i].time < events[i + 1].time for i in range(len(events) - 1))

    def test_loss_rate_roughly_respected(self):
        _, lost = synthesize_stream(2000, loss_rate=0.1, reorder_rate=0, reorder_depth=0)
        assert 100 < len(lost) < 320

    def test_reordering_produces_out_of_order(self):
        events, _ = synthesize_stream(500, loss_rate=0, reorder_rate=0.3, reorder_depth=8)
        seqs = [e.seq for e in events]
        assert seqs != sorted(seqs)
        assert sorted(seqs) == list(range(500))  # nothing lost

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            synthesize_stream(0, loss_rate=0, reorder_rate=0, reorder_depth=0)
        with pytest.raises(WorkloadError):
            synthesize_stream(10, loss_rate=1.0, reorder_rate=0, reorder_depth=0)


class TestDetectorEvaluation:
    def test_perfect_on_clean_loss(self):
        events, lost = synthesize_stream(1000, loss_rate=0.05, reorder_rate=0,
                                         reorder_depth=0, seed=3)
        result = evaluate_detector(events, lost, cfg())
        assert result.false_positives == 0
        assert result.recall > 0.95

    def test_heavy_reordering_with_tight_window_causes_fps(self):
        events, lost = synthesize_stream(2000, loss_rate=0.0, reorder_rate=0.5,
                                         reorder_depth=30, seed=4)
        tight = cfg(packet_threshold=2, reorder_window_ps=1)
        loose = cfg(packet_threshold=64, reorder_window_ps=microseconds(50))
        fp_tight = evaluate_detector(events, lost, tight, final_flush=False).false_positives
        fp_loose = evaluate_detector(events, lost, loose, final_flush=False).false_positives
        assert fp_tight > fp_loose

    def test_forget_eviction_hurts_recall(self):
        events, lost = synthesize_stream(3000, loss_rate=0.2, reorder_rate=0,
                                         reorder_depth=0, seed=5)
        roomy = evaluate_detector(events, lost, cfg(max_tracked_gaps=4096))
        tiny = evaluate_detector(events, lost,
                                 cfg(max_tracked_gaps=4, evict_policy="forget"))
        assert roomy.recall > tiny.recall

    def test_detection_latency_positive(self):
        events, lost = synthesize_stream(500, loss_rate=0.05, reorder_rate=0,
                                         reorder_depth=0, seed=6)
        result = evaluate_detector(events, lost, cfg())
        assert result.mean_latency_ps > 0

    def test_precision_recall_bounds(self):
        events, lost = synthesize_stream(800, loss_rate=0.1, reorder_rate=0.2,
                                         reorder_depth=5, seed=7)
        result = evaluate_detector(events, lost, cfg())
        assert 0 <= result.precision <= 1
        assert 0 <= result.recall <= 1
