"""The proxy-admission policy (FW#3: which incasts should be proxied)."""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import OrchestrationError
from repro.orchestration import ProxyAdmissionPolicy, run_concurrent_incasts
from repro.units import gbps, megabytes, microseconds, milliseconds
from repro.workloads import uniform_incast

PAPER_BUFFER = 17_015_000
PAPER_RTT = milliseconds(4)
INTRA_RTT = microseconds(8)


def decide(job, policy=None, **overrides):
    policy = policy or ProxyAdmissionPolicy()
    params = dict(
        bottleneck_bps=gbps(100),
        interdc_rtt_ps=PAPER_RTT,
        intra_rtt_ps=INTRA_RTT,
        bottleneck_buffer_bytes=PAPER_BUFFER,
    )
    params.update(overrides)
    return policy.decide(job, **params)


class TestSizeCrossover:
    """The policy must land the paper's Figure 2 (Right) crossover."""

    @pytest.mark.parametrize("mb,expected", [(10, False), (20, False),
                                             (50, True), (100, True)])
    def test_paper_crossover_at_20mb(self, mb, expected):
        job = uniform_incast("j", degree=4, total_bytes=megabytes(mb))
        assert decide(job).use_proxy is expected

    def test_degree_one_never_overloads(self):
        job = uniform_incast("j", degree=1, total_bytes=megabytes(500))
        decision = decide(job)
        assert not decision.use_proxy
        assert decision.overload_bytes <= 0

    def test_burst_capped_by_initial_window(self):
        # A giant flow still only bursts one BDP in the first RTT.
        job = uniform_incast("j", degree=2, total_bytes=megabytes(10_000))
        decision = decide(job)
        bdp = 50_000_000  # 100G x 4ms
        assert decision.overload_bytes <= 2 * bdp

    def test_headroom_scales_budget(self):
        job = uniform_incast("j", degree=4, total_bytes=megabytes(30))
        tight = ProxyAdmissionPolicy(headroom=0.5)
        loose = ProxyAdmissionPolicy(headroom=2.0)
        assert decide(job, tight).use_proxy
        assert not decide(job, loose).use_proxy


class TestLatencyCrossover:
    def test_short_feedback_loop_rejects_proxy(self):
        # A shallow buffer keeps the size test positive (loss expected) so
        # the latency test is what rejects: the 40us "inter-DC" RTT is only
        # 5x the intra-DC one.
        job = uniform_incast("j", degree=4, total_bytes=megabytes(100))
        decision = decide(job, interdc_rtt_ps=microseconds(40),
                          bottleneck_buffer_bytes=100_000)
        assert not decision.use_proxy
        assert "feedback loop" in decision.reason

    def test_ratio_reported(self):
        job = uniform_incast("j", degree=4, total_bytes=megabytes(100))
        decision = decide(job)
        assert decision.rtt_ratio == pytest.approx(PAPER_RTT / INTRA_RTT)

    def test_threshold_configurable(self):
        job = uniform_incast("j", degree=4, total_bytes=megabytes(100))
        strict = ProxyAdmissionPolicy(min_rtt_ratio=1000.0)
        assert not decide(job, strict).use_proxy


class TestValidation:
    def test_policy_params(self):
        with pytest.raises(OrchestrationError):
            ProxyAdmissionPolicy(headroom=0)
        with pytest.raises(OrchestrationError):
            ProxyAdmissionPolicy(min_rtt_ratio=0.5)

    def test_decide_params(self):
        job = uniform_incast("j", degree=2, total_bytes=100)
        with pytest.raises(OrchestrationError):
            decide(job, bottleneck_bps=0)


class TestIntegration:
    def test_selective_proxying_end_to_end(self):
        jobs = [
            uniform_incast("small", degree=2, total_bytes=megabytes(2),
                           receiver_index=0, sender_offset=0),
            uniform_incast("large", degree=2, total_bytes=megabytes(20),
                           receiver_index=1, sender_offset=2),
        ]
        result = run_concurrent_incasts(
            jobs, scheme="streamlined", strategy="central",
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
            admission=ProxyAdmissionPolicy(),
        )
        assert result.completed
        assert not result.admission_decisions["small"].use_proxy
        assert result.admission_decisions["large"].use_proxy
        assert set(result.proxy_assignments) == {"large"}

    def test_rejected_incast_matches_direct_performance(self):
        job = [uniform_incast("small", degree=2, total_bytes=megabytes(2))]
        cfg = small_interdc_config()
        transport = TransportConfig(payload_bytes=4096)
        gated = run_concurrent_incasts(
            job, scheme="streamlined", strategy="central", interdc=cfg,
            transport=transport, admission=ProxyAdmissionPolicy(),
        )
        direct = run_concurrent_incasts(
            job, scheme="baseline", strategy="none", interdc=cfg, transport=transport,
        )
        assert gated.ict_ps["small"] == pytest.approx(direct.ict_ps["small"], rel=0.05)
