"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.detection.lossdetector import DetectorConfig, FlowTracker
from repro.detection.reorder import ReorderingEstimator
from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.summary import summarize
from repro.net.packet import make_data
from repro.net.queues import DropTailQueue, EcnQueue, EnqueueOutcome, TrimmingQueue
from repro.sim.scheduler import EventScheduler
from repro.transport.dctcp import DctcpLike
from repro.transport.rtt import RttEstimator


class TestUnitProperties:
    @given(st.integers(min_value=0, max_value=10**9))
    def test_serialization_scales_linearly_at_100g(self, nbytes):
        # 100 Gb/s is exactly 80 ps/byte: no rounding error ever.
        assert units.serialization_delay_ps(nbytes, units.gbps(100)) == 80 * nbytes

    @given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
    def test_duration_parse_format_consistency(self, ms_value):
        ps = units.milliseconds(ms_value)
        assert units.parse_duration(f"{ms_value}ms") == ps

    @given(st.integers(min_value=1, max_value=10**12), st.integers(min_value=0, max_value=10**10))
    def test_bdp_non_negative_and_monotone(self, rate, rtt):
        bdp = units.bandwidth_delay_product_bytes(float(rate), rtt)
        assert bdp >= 0
        assert units.bandwidth_delay_product_bytes(float(rate), rtt + 10**6) >= bdp


class TestSchedulerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=200))
    def test_events_fire_in_nondecreasing_time_order(self, times):
        sched = EventScheduler()
        fired = []
        for t in times:
            sched.schedule_at(t, lambda t=t: fired.append(t))
        while (event := sched.pop_next()) is not None:
            event.callback()
        assert fired == sorted(times)

    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100),
        st.sets(st.integers(min_value=0, max_value=99)),
    )
    def test_cancellation_removes_exactly_the_cancelled(self, times, cancel_indices):
        sched = EventScheduler()
        events = [sched.schedule_at(t, lambda: None) for t in times]
        for index in cancel_indices:
            if index < len(events):
                events[index].cancel()
        surviving = sum(1 for e in events if not e.cancelled)
        popped = 0
        while sched.pop_next() is not None:
            popped += 1
        assert popped == surviving


class TestQueueProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=200))
    def test_droptail_conservation(self, sizes):
        q = DropTailQueue(50_000)
        accepted = 0
        for i, payload in enumerate(sizes):
            if q.offer(make_data(1, i, 0, 1, payload_bytes=payload)) is EnqueueOutcome.ENQUEUED:
                accepted += 1
        drained = 0
        while q.pop() is not None:
            drained += 1
        assert drained == accepted
        assert q.stats.dropped == len(sizes) - accepted
        assert q.occupied_bytes == 0

    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=200),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_ecn_queue_never_exceeds_capacity(self, sizes, seed):
        capacity = 20_000
        q = EcnQueue(capacity, 2_000, 10_000, random.Random(seed))
        peak = 0
        for i, payload in enumerate(sizes):
            q.offer(make_data(1, i, 0, 1, payload_bytes=payload))
            peak = max(peak, q.occupied_bytes)
        assert peak <= capacity
        assert q.stats.max_occupied_bytes == peak

    @given(st.lists(st.integers(min_value=100, max_value=5000), min_size=1, max_size=200))
    def test_trimming_conserves_packets(self, sizes):
        q = TrimmingQueue(10_000, 1_000, 5_000, random.Random(0),
                          control_capacity_bytes=10**9)
        for i, payload in enumerate(sizes):
            outcome = q.offer(make_data(1, i, 0, 1, payload_bytes=payload))
            assert outcome is not EnqueueOutcome.DROPPED  # control lane is huge
        drained = 0
        while q.pop() is not None:
            drained += 1
        # with an unbounded control lane, trimming never loses a packet
        assert drained == len(sizes)


class TestTransportProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10**10), min_size=1, max_size=100))
    def test_rtt_estimator_stays_within_sample_range(self, samples):
        est = RttEstimator(10**6, min_rto_ps=1, max_rto_ps=10**12)
        for s in samples:
            est.on_sample(s)
        assert min(samples) <= est.min_rtt <= min(min(samples), 10**6) or est.min_rtt == min(
            min(samples), 10**6
        )
        assert est.srtt <= max(max(samples), 10**6)
        assert est.rto_ps() >= 1

    @given(
        st.lists(
            st.tuples(st.sampled_from(["ack", "mark", "loss", "timeout"]),
                      st.integers(min_value=0, max_value=10**6)),
            min_size=1, max_size=300,
        )
    )
    def test_dctcp_window_invariants(self, events):
        cc = DctcpLike(1000, min_cwnd_packets=1)
        now = 0
        snd_nxt = 0
        for kind, _ in events:
            now += 10
            snd_nxt += 5
            if kind == "ack":
                cc.on_ack(now, False, snd_nxt - 1, snd_nxt)
            elif kind == "mark":
                cc.on_ack(now, True, snd_nxt - 1, snd_nxt)
            elif kind == "loss":
                cc.on_congestion(now, snd_nxt - 1, snd_nxt, severe=True)
            else:
                cc.on_timeout(now, snd_nxt)
            assert cc.cwnd >= cc.min_cwnd
            assert 0.0 <= cc.alpha <= 1.0


class TestDetectorProperties:
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    def test_each_seq_declared_at_most_once(self, seqs):
        cfg = DetectorConfig(max_tracked_gaps=16, packet_threshold=2,
                             reorder_window_ps=10, evict_policy="lost")
        declared = []
        tracker = FlowTracker(cfg, lambda seq, ts: declared.append(seq))
        for i, seq in enumerate(seqs):
            tracker.on_data(seq, now=(i + 1) * 100, packet_ts=i, is_retransmit=False)
        tracker.flush(10**9)
        assert len(declared) == len(set(declared))

    @given(st.permutations(list(range(30))))
    def test_reorder_estimator_accounts_every_seq(self, order):
        est = ReorderingEstimator()
        for seq in order:
            est.on_arrival(seq)
        assert est.outstanding == 0
        assert est.arrivals == 30


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
                    min_size=1, max_size=200))
    def test_cdf_percentiles_monotone(self, samples):
        cdf = EmpiricalCdf(samples)
        ps = [0, 10, 25, 50, 75, 90, 99, 100]
        values = [cdf.percentile(p) for p in ps]
        assert values == sorted(values)
        assert values[0] == min(samples)
        assert values[-1] == max(samples)

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
                    min_size=1, max_size=200))
    def test_summary_bounds(self, values):
        s = summarize(values)
        slack = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))  # fp summation
        assert s.minimum - slack <= s.mean <= s.maximum + slack
        assert s.stdev >= 0
        assert s.count == len(values)
