"""The discrete-event kernel: scheduler, simulator, timers, RNG, tracing."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import EventScheduler, HeapEventScheduler
from repro.sim.simulator import Simulator
from repro.sim.timers import Timer
from repro.sim.tracing import RecordingTracer


@pytest.fixture(params=[EventScheduler, HeapEventScheduler], ids=["wheel", "heap"])
def sched_cls(request):
    """Both schedulers must honor the identical (time, seq) FIFO contract."""
    return request.param


class TestEventScheduler:
    def test_pops_in_time_order(self, sched_cls):
        sched = sched_cls()
        order = []
        sched.schedule_at(30, lambda: order.append(30))
        sched.schedule_at(10, lambda: order.append(10))
        sched.schedule_at(20, lambda: order.append(20))
        while (event := sched.pop_next()) is not None:
            event.callback()
        assert order == [10, 20, 30]

    def test_same_tick_is_fifo(self, sched_cls):
        # The determinism contract the cache digests depend on: events
        # scheduled for the same tick fire in insertion order.
        sched = sched_cls()
        order = []
        for i in range(5):
            sched.schedule_at(7, lambda i=i: order.append(i))
        while (event := sched.pop_next()) is not None:
            event.callback()
        assert order == [0, 1, 2, 3, 4]

    def test_cancelled_events_are_skipped(self, sched_cls):
        sched = sched_cls()
        keep = sched.schedule_at(2, lambda: None)
        drop = sched.schedule_at(1, lambda: None)
        drop.cancel()
        assert sched.next_time() == 2
        assert sched.pop_next() is keep

    def test_len_counts_only_pending(self, sched_cls):
        sched = sched_cls()
        events = [sched.schedule_at(i, lambda: None) for i in range(4)]
        events[1].cancel()
        events[3].cancel()
        assert len(sched) == 2

    def test_bool_reflects_pending(self, sched_cls):
        sched = sched_cls()
        assert not sched
        event = sched.schedule_at(1, lambda: None)
        assert sched
        event.cancel()
        assert not sched

    def test_validate_time_rejects_past(self, sched_cls):
        sched = sched_cls()
        with pytest.raises(SchedulingError):
            sched.validate_time(now=100, time=99)
        sched.validate_time(now=100, time=100)  # boundary is fine

    def test_len_tracks_push_pop_cancel(self, sched_cls):
        sched = sched_cls()
        events = [sched.schedule_at(i, lambda: None) for i in range(5)]
        assert len(sched) == 5
        events[0].cancel()
        assert len(sched) == 4
        events[0].cancel()  # double-cancel must not decrement twice
        assert len(sched) == 4
        assert sched.pop_next() is events[1]
        assert len(sched) == 3
        events[2].cancel()
        events[3].cancel()
        assert len(sched) == 1
        assert sched.pop_next() is events[4]
        assert len(sched) == 0
        assert sched.pop_next() is None
        assert len(sched) == 0

    def test_len_matches_brute_force_under_churn(self, sched_cls):
        sched = sched_cls()
        live = [sched.schedule_at(i % 7, lambda: None) for i in range(50)]
        for event in live[::3]:
            event.cancel()
        for _ in range(10):
            sched.pop_next()
        remembered = len(sched)
        drained = 0
        while sched.pop_next() is not None:
            drained += 1
        assert remembered == drained

    def test_cancel_after_pop_does_not_corrupt_count(self, sched_cls):
        sched = sched_cls()
        event = sched.schedule_at(1, lambda: None)
        other = sched.schedule_at(2, lambda: None)
        assert sched.pop_next() is event
        event.cancel()  # already popped: must be a no-op for the counter
        assert len(sched) == 1
        assert sched.pop_next() is other


class TestUnpopMidBatch:
    """`EventScheduler.unpop` reinserts the unrun tail of a same-tick batch.

    The run loop uses it when ``stop()`` fires mid-batch; the contract is
    that a later drain resumes in the exact ``(time, seq)`` order the heap
    reference produces without any batching at all — including entries
    scheduled *between* the stop and the resume.
    """

    def test_unpop_resume_matches_heap_order(self):
        script = [(5, "a"), (5, "b"), (5, "c"), (7, "d"), (5, "e"), (5, "f"), (9, "g")]

        def drive_wheel():
            sched = EventScheduler()
            order = []
            mk = lambda tag: (lambda: order.append(tag))
            handles = [sched.schedule_at(t, mk(tag)) for t, tag in script]
            handles[4].cancel()  # "e": lazily cancelled inside the batch
            tick, batch = sched.pop_tick()
            assert tick == 5 and len(batch) == 4  # a, b, c, f
            for entry in batch[:2]:  # run a and b, then "stop"
                entry[2].callback()
            sched.unpop(batch[2:])
            sched.schedule_at(5, mk("h"))  # lands between unpopped c/f and d
            while (popped := sched.pop_tick()) is not None:
                for entry in list(popped[1]):
                    entry[2].callback()
            return order

        def drive_heap():
            sched = HeapEventScheduler()
            order = []
            mk = lambda tag: (lambda: order.append(tag))
            handles = [sched.schedule_at(t, mk(tag)) for t, tag in script]
            handles[4].cancel()
            for _ in range(2):  # the heap has no batches: just pop a and b
                sched.pop_next().callback()
            sched.schedule_at(5, mk("h"))
            while (event := sched.pop_next()) is not None:
                event.callback()
            return order

        wheel, heap = drive_wheel(), drive_heap()
        assert wheel == heap
        assert wheel == ["a", "b", "c", "f", "h", "d", "g"]

    def test_unpop_relinks_cancellation_and_count(self):
        sched = EventScheduler()
        fired = []
        a = sched.schedule_at(3, lambda: fired.append("a"))
        b = sched.schedule_at(3, lambda: fired.append("b"))
        c = sched.schedule_at(3, lambda: fired.append("c"))
        tick, batch = sched.pop_tick()
        assert len(batch) == 3
        batch[0][2].callback()
        sched.unpop(batch[1:])
        assert len(sched) == 2
        b.cancel()  # only works if unpop re-linked the Event to the queue
        assert len(sched) == 1
        assert sched.pop_next() is c
        assert len(sched) == 0

    def test_stop_mid_batch_resumes_in_order(self, sim):
        # End-to-end through the Simulator: four same-tick events, the
        # second stops the run; a later run() fires the reinserted tail in
        # the original order.
        fired = []

        def second():
            fired.append("b")
            sim.stop()

        sim.schedule(5, lambda: fired.append("a"))
        sim.schedule(5, second)
        sim.schedule(5, lambda: fired.append("c"))
        sim.schedule(5, lambda: fired.append("d"))
        sim.run()
        assert fired == ["a", "b"]
        sim.run()
        assert fired == ["a", "b", "c", "d"]


class TestSimulator:
    def test_clock_advances_with_events(self, sim):
        times = []
        sim.schedule(5, lambda: times.append(sim.now))
        sim.schedule(15, lambda: times.append(sim.now))
        sim.run()
        assert times == [5, 15]

    def test_schedule_is_relative(self, sim):
        seen = []
        def chain():
            seen.append(sim.now)
            if len(seen) < 3:
                sim.schedule(10, chain)
        sim.schedule(10, chain)
        sim.run()
        assert seen == [10, 20, 30]

    def test_run_until_advances_clock_even_when_idle(self, sim):
        sim.run(until=500)
        assert sim.now == 500

    def test_run_until_leaves_future_events(self, sim):
        fired = []
        sim.schedule(100, lambda: fired.append(1))
        sim.run(until=50)
        assert fired == [] and sim.now == 50
        sim.run()
        assert fired == [1] and sim.now == 100

    def test_stop_halts_immediately(self, sim):
        fired = []
        def first():
            fired.append(1)
            sim.stop()
        sim.schedule(1, first)
        sim.schedule(2, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_max_events_bounds_execution(self, sim):
        count = [0]
        for i in range(10):
            sim.schedule(i + 1, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(max_events=4)
        assert count[0] == 4

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(5, lambda: None)

    def test_reentrant_run_rejected(self, sim):
        def evil():
            sim.run()
        sim.schedule(1, evil)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_accumulates(self, sim):
        for i in range(3):
            sim.schedule(i + 1, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_pending_events_counts_through_run(self, sim):
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        kept = sim.schedule(3, lambda: None)
        assert sim.pending_events() == 3
        sim.run(until=2)
        assert sim.pending_events() == 1
        kept.cancel()
        assert sim.pending_events() == 0

    def test_deterministic_given_seed(self):
        def run_once(seed):
            s = Simulator(seed=seed)
            draws = []
            s.schedule(1, lambda: draws.append(s.rng.stream("x").random()))
            s.run()
            return draws[0]
        assert run_once(1) == run_once(1)
        assert run_once(1) != run_once(2)


class TestTimer:
    def test_fires_after_delay(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(100)
        sim.run()
        assert fired == [100]

    def test_restart_supersedes(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(100)
        sim.schedule(50, lambda: timer.restart(100))
        sim.run()
        assert fired == [150]

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.restart(10)
        timer.stop()
        sim.run()
        assert fired == []

    def test_start_if_idle_does_not_rearm(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(100)
        timer.start_if_idle(5)
        sim.run()
        assert fired == [100]

    def test_armed_and_expires_at(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.armed and timer.expires_at is None
        timer.restart(42)
        assert timer.armed and timer.expires_at == 42
        sim.run()
        assert not timer.armed

    def test_can_rearm_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(10)
        sim.run()
        timer.restart(10)
        sim.run()
        assert fired == [10, 20]


class TestRngRegistry:
    def test_streams_are_deterministic(self):
        a = RngRegistry(1).stream("spray")
        b = RngRegistry(1).stream("spray")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        reg = RngRegistry(1)
        x = reg.stream("x")
        seq1 = [x.random() for _ in range(3)]
        reg2 = RngRegistry(1)
        reg2.stream("y").random()  # interleave another consumer
        seq2 = [reg2.stream("x").random() for _ in range(3)]
        assert seq1 == seq2

    def test_same_stream_returned(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_fork_differs(self):
        reg = RngRegistry(5)
        forked = reg.fork(1)
        assert reg.stream("x").random() != forked.stream("x").random()


class TestTracing:
    def test_recording_tracer_captures(self, ):
        tracer = RecordingTracer()
        sim = Simulator(seed=0, tracer=tracer)
        sim.schedule(5, lambda: sim.trace("src", "kind", value=3))
        sim.run()
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert (record.time, record.source, record.kind) == (5, "src", "kind")
        assert record.details == {"value": 3}

    def test_kind_filter(self):
        tracer = RecordingTracer(kinds={"keep"})
        sim = Simulator(seed=0, tracer=tracer)
        sim.schedule(1, lambda: sim.trace("s", "keep"))
        sim.schedule(2, lambda: sim.trace("s", "drop"))
        sim.run()
        assert [r.kind for r in tracer.records] == ["keep"]
        assert tracer.of_kind("keep") == tracer.records

    def test_null_tracer_is_free(self, sim):
        sim.schedule(1, lambda: sim.trace("s", "anything", x=1))
        sim.run()  # must not raise or record
