"""Congestion control: DCTCP-like, Reno-AIMD, unlimited, RTT/RTO estimation."""

import pytest

from repro.transport.aimd import RenoAimd
from repro.transport.cc_base import UnlimitedWindow
from repro.transport.dctcp import DctcpLike
from repro.transport.rtt import RttEstimator
from repro.units import microseconds, milliseconds


class TestDctcpLike:
    def make(self, cwnd=100.0, **kw):
        return DctcpLike(cwnd, **kw)

    def test_unmarked_acks_grow_window(self):
        cc = self.make(cwnd=10)
        before = cc.cwnd
        cc.on_ack(now=1, marked=False, seq=0, snd_nxt=10)
        assert cc.cwnd > before

    def test_congestion_avoidance_rate(self):
        cc = self.make(cwnd=10)
        cc.ssthresh = 10  # at threshold -> CA
        cc.on_ack(1, False, 0, 10)
        assert cc.cwnd == pytest.approx(10 + 1 / 10)

    def test_slow_start_below_ssthresh(self):
        cc = self.make(cwnd=4)
        cc.ssthresh = 100
        cc.on_ack(1, False, 0, 4)
        assert cc.cwnd == 5

    def test_first_marked_ack_halves(self):
        cc = self.make(cwnd=100)  # alpha starts at 1
        cc.on_ack(1, True, seq=0, snd_nxt=100)
        assert cc.cwnd == pytest.approx(100 * (1 - 1 / 2), rel=0.01)

    def test_alpha_decays_without_marks(self):
        cc = self.make()
        for i in range(100):
            cc.on_ack(i, False, i, 200)
        assert cc.alpha < 0.01

    def test_alpha_weighted_cut_is_gentler(self):
        cc = self.make(cwnd=100)
        for i in range(100):
            cc.on_ack(i, False, i, 200)  # drive alpha down
        w = cc.cwnd
        cc.on_ack(200, True, seq=150, snd_nxt=200)
        assert cc.cwnd > 0.9 * w  # small alpha -> small cut

    def test_one_cut_per_recovery_epoch(self):
        cc = self.make(cwnd=100)
        cc.on_congestion(now=1, seq=5, snd_nxt=50, severe=True)
        w = cc.cwnd
        # losses from inside the epoch (seq < 50) must not cut again
        cc.on_congestion(now=2, seq=10, snd_nxt=50, severe=True)
        cc.on_congestion(now=3, seq=49, snd_nxt=50, severe=True)
        assert cc.cwnd == w
        assert cc.cuts == 1

    def test_new_epoch_allows_new_cut(self):
        cc = self.make(cwnd=100)
        cc.on_congestion(1, seq=5, snd_nxt=50, severe=True)
        w = cc.cwnd
        cc.on_congestion(2, seq=50, snd_nxt=80, severe=True)
        assert cc.cwnd < w
        assert cc.cuts == 2

    def test_nack_cut_factor(self):
        cc = DctcpLike(64, nack_cut_factor=0.5)
        cc.on_congestion(1, seq=0, snd_nxt=64, severe=True)
        assert cc.cwnd == 32

    def test_timeout_resets_to_min(self):
        cc = self.make(cwnd=500, min_cwnd_packets=1)
        cc.on_timeout(now=10, snd_nxt=500)
        assert cc.cwnd == 1
        assert cc.ssthresh == 250
        assert cc.timeouts == 1
        # losses of pre-timeout packets cannot cut the reset window further
        cc.on_congestion(11, seq=100, snd_nxt=500, severe=True)
        assert cc.cwnd == 1

    def test_window_floor(self):
        cc = DctcpLike(2, min_cwnd_packets=1)
        for i in range(10):
            cc.on_congestion(i, seq=100 * i, snd_nxt=100 * i + 1, severe=True)
        assert cc.cwnd >= 1

    def test_can_send_window_check(self):
        cc = self.make(cwnd=3)
        assert cc.can_send(2)
        assert not cc.can_send(3)
        assert not cc.can_send(4)


class TestRenoAimd:
    def test_marked_ack_halves(self):
        cc = RenoAimd(64)
        cc.on_ack(1, True, seq=0, snd_nxt=64)
        assert cc.cwnd == 32

    def test_loss_halves_once_per_epoch(self):
        cc = RenoAimd(64)
        cc.on_congestion(1, seq=0, snd_nxt=64, severe=True)
        cc.on_congestion(2, seq=1, snd_nxt=64, severe=True)
        assert cc.cwnd == 32

    def test_growth(self):
        cc = RenoAimd(10)
        cc.on_ack(1, False, 0, 10)
        assert cc.cwnd > 10


class TestUnlimitedWindow:
    def test_always_can_send(self):
        cc = UnlimitedWindow()
        assert cc.can_send(10**9)

    def test_signals_are_inert(self):
        cc = UnlimitedWindow()
        cc.on_ack(1, True, 0, 10)
        cc.on_congestion(1, 0, 10, severe=True)
        cc.on_timeout(1, 10)
        assert cc.can_send(10**12)
        assert cc.timeouts == 1


class TestRttEstimator:
    def make(self, initial=milliseconds(4)):
        return RttEstimator(initial, min_rto_ps=milliseconds(1), max_rto_ps=milliseconds(400))

    def test_seeded_srtt(self):
        est = self.make()
        assert est.srtt == milliseconds(4)
        assert est.rto_ps() >= est.srtt

    def test_first_sample_replaces_seed(self):
        est = self.make()
        est.on_sample(milliseconds(10))
        assert est.srtt == milliseconds(10)

    def test_ewma_converges(self):
        est = self.make()
        for _ in range(200):
            est.on_sample(milliseconds(2))
        assert est.srtt == pytest.approx(milliseconds(2), rel=0.01)
        assert est.rttvar < milliseconds(1)

    def test_min_rtt_tracks_minimum(self):
        est = self.make()
        est.on_sample(milliseconds(5))
        est.on_sample(milliseconds(2))
        est.on_sample(milliseconds(8))
        assert est.min_rtt == milliseconds(2)

    def test_rto_floor_and_ceiling(self):
        est = RttEstimator(microseconds(10), min_rto_ps=milliseconds(1),
                           max_rto_ps=milliseconds(5))
        assert est.rto_ps() == milliseconds(1)  # floor
        assert est.rto_ps(backoff=10) == milliseconds(5)  # ceiling

    def test_backoff_doubles(self):
        est = self.make()
        assert est.rto_ps(backoff=1) == min(2 * est.rto_ps(0), milliseconds(400))

    def test_non_positive_samples_ignored(self):
        est = self.make()
        srtt = est.srtt
        est.on_sample(0)
        est.on_sample(-5)
        assert est.srtt == srtt
