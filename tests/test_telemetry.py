"""Telemetry subsystem: recorder, snapshot, digest equality, sweep export."""

import json
from dataclasses import replace

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError
from repro.experiments.parallel import ExperimentEngine
from repro.experiments.runner import IncastScenario, run_incast
from repro.telemetry import (
    NULL_INSTRUMENTATION,
    RunOptions,
    SweepTelemetry,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryRecorder,
    TelemetrySnapshot,
    validate_sweep_telemetry,
)
from repro.units import kilobytes, microseconds

#: Result fields that must be bit-identical with telemetry on vs off.
#: ``events_executed`` and ``wall_seconds`` legitimately differ (sampler
#: ticks are events; wall time is wall time) and are excluded from the
#: sweep digest for the same reason.
_DIGEST_FIELDS = (
    "ict_ps", "flow_completion_ps", "completed", "counters",
    "retransmissions", "timeouts", "nacks_received", "marked_acks",
    "proxy_nacks_sent", "failed_flows", "fault_events_applied",
    "fault_events_skipped", "failovers",
)


def _scenario(scheme="baseline", **overrides):
    base = IncastScenario(
        scheme=scheme,
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    return replace(base, **overrides) if overrides else base


class TestNullInstrumentation:
    def test_disabled_and_inert(self):
        assert NULL_INSTRUMENTATION.enabled is False
        NULL_INSTRUMENTATION.on_port(object())
        NULL_INSTRUMENTATION.phase("build")
        assert NULL_INSTRUMENTATION.finish() is None

    def test_plain_run_attaches_no_snapshot(self):
        result = run_incast(_scenario())
        assert result.telemetry is None


class TestRecorderSnapshot:
    def test_snapshot_series_and_profile(self):
        result = run_incast(_scenario("streamlined"),
                            options=RunOptions(telemetry=True))
        snap = result.telemetry
        assert isinstance(snap, TelemetrySnapshot)
        # Aggregate series are always present and actually sampled.
        for name in ("scheduler.pending", "net.queue_bytes", "net.ecn_marked",
                     "net.trims", "net.drops", "senders.nacks", "senders.retx"):
            series = snap.get(name)
            assert series is not None, name
            assert len(series) > 1
        # Per-entity probes: one cwnd/inflight pair per sender.
        cwnds = [n for n in snap.series if n.startswith("sender.") and n.endswith(".cwnd")]
        assert len(cwnds) == 2
        assert any(n.startswith("proxy.") for n in snap.series)
        assert any(n.startswith("port.") for n in snap.series)
        # The profiler saw the run.
        profile = snap.profile
        assert profile.events_executed > 0
        assert set(profile.phase_seconds) == {"build", "run", "collect"}
        assert profile.handler_seconds
        assert sum(profile.handler_events.values()) == profile.events_executed
        assert profile.hottest_handlers(2)
        # Counters describe registration coverage.
        assert snap.counters["senders_registered"] == 2
        assert snap.counters["series_recorded"] == len(snap.series)
        assert snap.counters["series_dropped"] == 0
        # The snapshot round-trips to JSON.
        encoded = json.dumps(snap.as_dict())
        assert "net.queue_bytes" in encoded

    def test_queue_series_sees_traffic(self):
        result = run_incast(_scenario("baseline"),
                            options=RunOptions(telemetry=True))
        queue = result.telemetry.get("net.queue_bytes")
        assert queue.peak() > 0

    def test_sample_interval_is_honored(self):
        opts = RunOptions(telemetry=True, sample_interval_ps=microseconds(100))
        result = run_incast(_scenario(), options=opts)
        snap = result.telemetry
        assert snap.sample_interval_ps == microseconds(100)
        times = snap.get("net.queue_bytes").times
        assert all(b - a == microseconds(100) for a, b in zip(times, times[1:]))


class TestBoundedMemory:
    def test_max_samples_caps_every_series(self):
        opts = RunOptions(telemetry=True, sample_interval_ps=microseconds(1),
                          max_samples=16)
        result = run_incast(_scenario(), options=opts)
        for series in result.telemetry.series.values():
            assert len(series) <= 16

    def test_max_series_drops_surplus_probes_counted(self):
        recorder = TelemetryRecorder(max_series=8)
        scenario = _scenario("streamlined")
        result = run_incast(scenario, options=RunOptions(instrumentation=recorder))
        snap = result.telemetry
        assert len(snap.series) == 8
        assert snap.counters["series_dropped"] > 0
        assert recorder.series_dropped == snap.counters["series_dropped"]
        # Aggregates registered first survive the squeeze.
        assert snap.get("scheduler.pending") is not None
        assert snap.get("net.queue_bytes") is not None

    def test_recorder_validates_construction(self):
        with pytest.raises(ConfigError):
            TelemetryRecorder(sample_interval_ps=0)
        with pytest.raises(ConfigError):
            TelemetryRecorder(max_samples=0)
        with pytest.raises(ConfigError):
            TelemetryRecorder(max_series=0)


class TestDigestEquality:
    @pytest.mark.parametrize(
        "scheme", ["baseline", "naive", "streamlined", "trimless", "proxy-failover"]
    )
    def test_results_identical_with_telemetry_on_and_off(self, scheme):
        scenario = _scenario(scheme)
        off = run_incast(scenario)
        on = run_incast(scenario, options=RunOptions(telemetry=True))
        for name in _DIGEST_FIELDS:
            assert getattr(off, name) == getattr(on, name), name
        assert off.telemetry is None and on.telemetry is not None


class TestSweepTelemetry:
    def _stats(self):
        engine = ExperimentEngine(workers=1)
        return engine.stats

    def test_engine_records_and_document_validates(self, tmp_path):
        lines = []
        tel = SweepTelemetry(print_fn=lines.append)
        engine = ExperimentEngine(workers=1, telemetry=tel)
        scenarios = [_scenario("baseline"), _scenario("streamlined")]
        engine.run_incasts(scenarios)
        assert [r.status for r in tel.runs] == ["ok", "ok"]
        assert tel.runs[0].scheme == "baseline"
        assert any("runs complete" in line for line in lines)

        doc = tel.document(engine.stats)
        assert doc["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert validate_sweep_telemetry(doc) == []
        assert doc["engine"]["tasks"] == 2
        assert 0.0 <= doc["engine"]["worker_utilization"]

        json_path, csv_path = tel.write(tmp_path, engine.stats)
        reread = json.loads(json_path.read_text())
        assert validate_sweep_telemetry(reread) == []
        rows = csv_path.read_text().splitlines()
        assert rows[0] == "index,scheme,seed,status,attempts,elapsed_seconds"
        assert len(rows) == 3

    def test_cache_hits_are_recorded_as_cached(self, tmp_path):
        from repro.experiments.parallel import ResultCache

        cache = ResultCache(tmp_path / "cache")
        scenario = _scenario()
        ExperimentEngine(workers=1, cache=cache).run_incasts([scenario])
        tel = SweepTelemetry(print_fn=lambda line: None)
        engine = ExperimentEngine(workers=1, cache=cache, telemetry=tel)
        engine.run_incasts([scenario])
        assert [r.status for r in tel.runs] == ["cached"]

    def test_validator_flags_tampering(self):
        tel = SweepTelemetry(print_fn=lambda line: None)
        doc = tel.document(self._stats())
        assert validate_sweep_telemetry(doc) == []

        assert validate_sweep_telemetry("nope")
        missing = dict(doc)
        del missing["engine"]
        assert any("engine" in p for p in validate_sweep_telemetry(missing))
        wrong_version = dict(doc, schema_version=99)
        assert any("schema_version" in p
                   for p in validate_sweep_telemetry(wrong_version))
        bad_engine = dict(doc, engine=dict(doc["engine"], workers="many"))
        assert any("workers" in p for p in validate_sweep_telemetry(bad_engine))
        bad_run = dict(doc, runs=[{"index": 0}])
        assert validate_sweep_telemetry(bad_run)
        bad_status = dict(doc, runs=[{
            "index": 0, "scheme": "baseline", "seed": 0, "status": "melted",
            "attempts": 1, "elapsed_seconds": 0.1,
        }])
        assert any("melted" in p for p in validate_sweep_telemetry(bad_status))

    def test_heartbeat_every_validation(self):
        with pytest.raises(ValueError):
            SweepTelemetry(heartbeat_every=0)
