"""Proxy orchestration: registry, policies, selectors, concurrent runs."""

import random

import pytest

from repro.config import TransportConfig
from repro.errors import OrchestrationError
from repro.orchestration import (
    CentralOrchestrator,
    DecentralizedSelector,
    ProxyRegistry,
    least_bytes,
    least_loaded,
    make_round_robin,
    run_concurrent_incasts,
)
from repro.config import small_interdc_config
from repro.workloads import uniform_incast
from repro.units import kilobytes


class TestRegistry:
    def test_assign_release_cycle(self):
        reg = ProxyRegistry()
        reg.register(10)
        reg.assign(10, "a", 100)
        assert reg.load(10) == 1
        reg.release(10, "a", 100)
        assert reg.load(10) == 0

    def test_double_assign_rejected(self):
        reg = ProxyRegistry()
        reg.register(10)
        reg.assign(10, "a", 1)
        with pytest.raises(OrchestrationError):
            reg.assign(10, "a", 1)

    def test_release_unknown_rejected(self):
        reg = ProxyRegistry()
        reg.register(10)
        with pytest.raises(OrchestrationError):
            reg.release(10, "ghost", 1)

    def test_unregistered_host_rejected(self):
        reg = ProxyRegistry()
        with pytest.raises(OrchestrationError):
            reg.load(99)

    def test_register_idempotent(self):
        reg = ProxyRegistry()
        reg.register(1)
        reg.assign(1, "a", 5)
        reg.register(1)
        assert reg.load(1) == 1


class TestPolicies:
    def fill(self):
        reg = ProxyRegistry()
        for host in (1, 2, 3):
            reg.register(host)
        reg.assign(1, "x", 100)
        reg.assign(2, "y", 10)
        reg.assign(2, "z", 10)
        return reg

    def test_least_loaded(self):
        assert least_loaded(self.fill()) == 3

    def test_least_loaded_tiebreak_by_bytes(self):
        reg = ProxyRegistry()
        for host in (1, 2):
            reg.register(host)
        reg.assign(1, "a", 100)
        reg.assign(2, "b", 10)
        reg.release(1, "a", 0)  # host 1: load 0 but 100 residual bytes
        reg.release(2, "b", 0)
        assert least_loaded(reg) == 2

    def test_least_bytes(self):
        assert least_bytes(self.fill()) == 3

    def test_round_robin_rotates(self):
        reg = ProxyRegistry()
        for host in (1, 2, 3):
            reg.register(host)
        policy = make_round_robin()
        assert [policy(reg) for _ in range(5)] == [1, 2, 3, 1, 2]

    def test_empty_registry_raises(self):
        with pytest.raises(OrchestrationError):
            least_loaded(ProxyRegistry())


class TestSelectors:
    def job(self, name="j"):
        return uniform_incast(name, degree=2, total_bytes=100)

    def test_central_assigns_and_releases(self):
        reg = ProxyRegistry()
        reg.register(5)
        orch = CentralOrchestrator(reg)
        host, delay = orch.select(self.job())
        assert host == 5 and delay > 0
        assert reg.load(5) == 1
        orch.release(self.job(), 5)
        assert reg.load(5) == 0

    def test_central_spreads_across_proxies(self):
        reg = ProxyRegistry()
        for host in (1, 2, 3):
            reg.register(host)
        orch = CentralOrchestrator(reg)
        chosen = [orch.select(self.job(f"j{i}"))[0] for i in range(3)]
        assert sorted(chosen) == [1, 2, 3]

    def test_decentralized_probe_cost_accumulates(self):
        reg = ProxyRegistry()
        for host in (1, 2):
            reg.register(host)
        sel = DecentralizedSelector(reg, random.Random(0), max_load=1)
        h1, d1 = sel.select(self.job("a"))
        h2, d2 = sel.select(self.job("b"))
        assert {h1, h2} == {1, 2}
        assert sel.probes >= 2
        assert d1 >= sel.probe_rtt_ps and d2 >= sel.probe_rtt_ps

    def test_decentralized_falls_back_when_all_busy(self):
        reg = ProxyRegistry()
        reg.register(1)
        sel = DecentralizedSelector(reg, random.Random(0), max_load=1, max_trials=3)
        sel.select(self.job("a"))
        host, delay = sel.select(self.job("b"))
        assert host == 1
        assert sel.fallbacks == 1
        assert delay == 3 * sel.probe_rtt_ps

    def test_selector_validation(self):
        reg = ProxyRegistry()
        with pytest.raises(OrchestrationError):
            DecentralizedSelector(reg, random.Random(0), max_load=0)


class TestConcurrentRuns:
    """Small-topology end-to-end orchestration runs."""

    @pytest.fixture()
    def setup(self):
        transport = TransportConfig(payload_bytes=4096)
        # 20 MB per job so the first-RTT burst overwhelms the small config's
        # 4 MB leaf buffers — without loss, no scheme can beat any other.
        jobs = [
            uniform_incast(f"j{i}", degree=2, total_bytes=kilobytes(20_000),
                           receiver_index=i, sender_offset=i * 2)
            for i in range(2)
        ]
        return jobs, small_interdc_config(), transport

    def test_baseline_run(self, setup):
        jobs, cfg, transport = setup
        result = run_concurrent_incasts(jobs, scheme="baseline", strategy="none",
                                        interdc=cfg, transport=transport)
        assert result.completed
        assert set(result.ict_ps) == {"j0", "j1"}
        assert result.proxy_assignments == {}

    def test_central_assigns_distinct_proxies(self, setup):
        jobs, cfg, transport = setup
        result = run_concurrent_incasts(jobs, scheme="streamlined", strategy="central",
                                        interdc=cfg, transport=transport)
        assert result.completed
        assert len(set(result.proxy_assignments.values())) == 2

    def test_shared_proxy_single_assignment(self, setup):
        jobs, cfg, transport = setup
        result = run_concurrent_incasts(jobs, scheme="streamlined", strategy="shared",
                                        interdc=cfg, transport=transport)
        assert result.completed
        assert len(set(result.proxy_assignments.values())) == 1

    def test_proxies_beat_baseline(self, setup):
        jobs, cfg, transport = setup
        base = run_concurrent_incasts(jobs, scheme="baseline", strategy="none",
                                      interdc=cfg, transport=transport)
        prox = run_concurrent_incasts(jobs, scheme="streamlined", strategy="central",
                                      interdc=cfg, transport=transport)
        assert prox.mean_ict_ps < base.mean_ict_ps

    def test_naive_scheme_runs(self, setup):
        jobs, cfg, transport = setup
        result = run_concurrent_incasts(jobs, scheme="naive", strategy="central",
                                        interdc=cfg, transport=transport)
        assert result.completed

    def test_unknown_strategy_rejected(self, setup):
        jobs, cfg, transport = setup
        with pytest.raises(OrchestrationError):
            run_concurrent_incasts(jobs, strategy="telepathy", interdc=cfg)

    def test_out_of_range_indices_rejected(self, setup):
        _, cfg, transport = setup
        huge = [uniform_incast("big", degree=2, total_bytes=100, receiver_index=999)]
        with pytest.raises(OrchestrationError):
            run_concurrent_incasts(huge, interdc=cfg, transport=transport)

    def test_empty_jobs_rejected(self, setup):
        _, cfg, _ = setup
        with pytest.raises(OrchestrationError):
            run_concurrent_incasts([], interdc=cfg)


class TestLiveness:
    def test_dead_proxies_not_selected(self):
        from repro.orchestration import CentralOrchestrator, ProxyRegistry
        from repro.workloads import uniform_incast
        reg = ProxyRegistry()
        for host in (1, 2):
            reg.register(host)
        reg.mark_dead(1)
        orch = CentralOrchestrator(reg)
        chosen = [orch.select(uniform_incast(f"j{i}", degree=2, total_bytes=10))[0]
                  for i in range(3)]
        assert set(chosen) == {2}

    def test_revived_proxy_rejoins_pool(self):
        from repro.orchestration import ProxyRegistry, least_loaded
        reg = ProxyRegistry()
        for host in (1, 2):
            reg.register(host)
        reg.mark_dead(1)
        assert reg.host_ids == [2]
        reg.mark_alive(1)
        assert set(reg.host_ids) == {1, 2}
        assert least_loaded(reg) in (1, 2)

    def test_all_dead_raises(self):
        import pytest as _pytest
        from repro.errors import OrchestrationError
        from repro.orchestration import ProxyRegistry, least_loaded
        reg = ProxyRegistry()
        reg.register(1)
        reg.mark_dead(1)
        with _pytest.raises(OrchestrationError):
            least_loaded(reg)

    def test_decentralized_skips_dead(self):
        import random
        from repro.orchestration import DecentralizedSelector, ProxyRegistry
        from repro.workloads import uniform_incast
        reg = ProxyRegistry()
        for host in (1, 2, 3):
            reg.register(host)
        reg.mark_dead(2)
        sel = DecentralizedSelector(reg, random.Random(0), max_load=10)
        chosen = {sel.select(uniform_incast(f"j{i}", degree=2, total_bytes=10))[0]
                  for i in range(6)}
        assert 2 not in chosen
