"""Additional property-based tests for the newer subsystems."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.evaluation import evaluate_detector, synthesize_stream
from repro.detection.lossdetector import DetectorConfig
from repro.metrics.summary import jain_fairness
from repro.net.buffers import SharedBuffer, SharedEcnQueue
from repro.net.packet import make_data
from repro.orchestration.admission import ProxyAdmissionPolicy
from repro.transport.rate_based import RateBased
from repro.units import gbps, megabytes, microseconds, milliseconds
from repro.workloads.incast import uniform_incast


class TestAdmissionProperties:
    @given(
        small_mb=st.integers(min_value=1, max_value=50),
        extra_mb=st.integers(min_value=1, max_value=200),
        degree=st.integers(min_value=2, max_value=32),
    )
    def test_size_test_is_monotone(self, small_mb, extra_mb, degree):
        """Growing the incast can only flip direct->proxy, never back."""
        policy = ProxyAdmissionPolicy()
        kwargs = dict(
            bottleneck_bps=gbps(100),
            interdc_rtt_ps=milliseconds(4),
            intra_rtt_ps=microseconds(8),
            bottleneck_buffer_bytes=17_015_000,
        )
        small = policy.decide(
            uniform_incast("s", degree=degree, total_bytes=megabytes(small_mb)), **kwargs
        )
        large = policy.decide(
            uniform_incast("l", degree=degree,
                           total_bytes=megabytes(small_mb + extra_mb)), **kwargs
        )
        assert large.overload_bytes >= small.overload_bytes
        if small.use_proxy:
            assert large.use_proxy

    @given(degree=st.integers(min_value=2, max_value=60))
    def test_overload_never_exceeds_burst(self, degree):
        policy = ProxyAdmissionPolicy()
        job = uniform_incast("j", degree=degree, total_bytes=megabytes(100))
        decision = policy.decide(
            job,
            bottleneck_bps=gbps(100),
            interdc_rtt_ps=milliseconds(4),
            intra_rtt_ps=microseconds(8),
            bottleneck_buffer_bytes=17_015_000,
        )
        assert decision.overload_bytes <= job.total_bytes


class TestSharedBufferProperties:
    @given(
        sizes=st.lists(st.integers(min_value=64, max_value=9000),
                       min_size=1, max_size=300),
        alpha=st.floats(min_value=0.1, max_value=16.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_pool_accounting_balances(self, sizes, alpha, seed):
        pool = SharedBuffer(64_000)
        rng = random.Random(seed)
        queues = [SharedEcnQueue(pool, alpha, 1_000, 8_000, rng) for _ in range(3)]
        for i, size in enumerate(sizes):
            queues[i % 3].offer(make_data(1, i, 0, 1, payload_bytes=size))
            assert 0 <= pool.occupied_bytes <= pool.total_bytes
        drained = 0
        for q in queues:
            while q.pop() is not None:
                drained += 1
        assert pool.occupied_bytes == 0
        accepted = sum(q.stats.enqueued for q in queues)
        assert drained == accepted


class TestRateBasedProperties:
    @given(
        spacings=st.lists(st.integers(min_value=1_000, max_value=10**9),
                          min_size=10, max_size=120),
    )
    def test_window_always_at_least_min(self, spacings):
        cc = RateBased(100, payload_bytes=4096, min_rtt_ps=microseconds(50))
        now = 0
        for i, gap in enumerate(spacings):
            now += gap
            cc.on_ack(now, False, i, i + 1)
            assert cc.cwnd >= cc.min_cwnd
            assert cc.btlbw_bps >= 0


class TestDetectorScoreProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        loss=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_in_order_streams_score_perfect_precision(self, loss, seed):
        """Without reordering, the detector never false-positives."""
        events, lost = synthesize_stream(
            600, loss_rate=loss, reorder_rate=0, reorder_depth=0, seed=seed
        )
        result = evaluate_detector(
            events, lost,
            DetectorConfig(packet_threshold=2, reorder_window_ps=microseconds(1)),
        )
        assert result.false_positives == 0
        assert result.precision == 1.0


class TestFairnessProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=1e9), min_size=1, max_size=64))
    def test_jain_bounds(self, values):
        index = jain_fairness(values)
        assert 1 / len(values) - 1e-9 <= index <= 1 + 1e-9

    @given(st.floats(min_value=0.001, max_value=1e6), st.integers(min_value=1, max_value=50))
    def test_equal_values_are_perfectly_fair(self, value, n):
        assert abs(jain_fairness([value] * n) - 1.0) < 1e-9
