"""Sender edge cases: wire-time pacing, TLP, RTO backoff, fairness."""

import pytest

from repro.config import TransportConfig
from repro.metrics.summary import jain_fairness
from repro.net.packet import PacketType, make_ack
from repro.transport.connection import Connection
from repro.units import gbps, kilobytes, microseconds, milliseconds, serialization_delay_ps
from tests.conftest import build_incast_star, build_pair


class TestWireTimestampPacing:
    def test_burst_timestamps_spread_at_line_rate(self, sim, transport_cfg):
        net, a, b = build_pair(sim, rate_bps=gbps(10))
        conn = Connection(net, a, b, 20_000, transport_cfg)
        captured = []
        original = a.send
        a.send = lambda p: (captured.append((p.seq, p.ts)), original(p))[1]
        conn.start()  # whole window handed to the NIC in one call
        step = serialization_delay_ps(
            transport_cfg.payload_bytes + transport_cfg.header_bytes, gbps(10)
        )
        stamps = [ts for _, ts in captured]
        assert len(stamps) >= 2
        assert all(b - a == step for a, b in zip(stamps, stamps[1:]))

    def test_timestamps_echoed_back_exactly(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 5_000, transport_cfg)
        echoes = []
        original = conn.sender._on_ack
        def spy(packet):
            echoes.append(packet.ts_echo)
            original(packet)
        conn.sender._on_ack = spy
        conn.start()
        sim.run(until=milliseconds(10))
        assert conn.completed
        assert all(e >= 0 for e in echoes)
        assert echoes == sorted(echoes)  # in-order path, paced stamps


class TestTailLossProbe:
    def test_tlp_fires_before_rto_on_tail_loss(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 20_000, transport_cfg)
        # Swallow the last data packet once: tail loss with no later SACKs.
        tail_seq = conn.total_packets - 1
        eaten = []
        original_receive = b.receive
        def eat_tail(packet):
            if (packet.kind == PacketType.DATA and packet.seq == tail_seq
                    and not eaten):
                eaten.append(packet.seq)
                return
            original_receive(packet)
        b.receive = eat_tail
        conn.start()
        sim.run(until=milliseconds(200))
        assert conn.completed
        assert conn.sender.stats.tlp_probes >= 1
        # the probe rescued the tail without a full timeout
        assert conn.sender.stats.timeouts == 0

    def test_no_probes_on_clean_transfer(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 20_000, transport_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        assert conn.completed
        assert conn.sender.stats.tlp_probes == 0


class TestRtoBackoff:
    def test_backoff_grows_while_blackholed(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 10_000, transport_cfg)
        net.set_link_state(a.id, net.adjacency[a.id][0], False)  # black hole
        conn.start()
        sim.run(until=milliseconds(400))
        assert conn.sender.stats.timeouts >= 3
        assert conn.sender._backoff >= 3
        assert not conn.completed

    def test_backoff_resets_on_progress(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 50_000, transport_cfg)
        switch = net.adjacency[a.id][0]
        net.fail_link(a.id, switch, at_ps=microseconds(5), duration_ps=milliseconds(2))
        conn.start()
        sim.run(until=milliseconds(500))
        assert conn.completed
        assert conn.sender.stats.timeouts >= 1
        assert conn.sender._backoff == 0  # progress after recovery reset it

    def test_stale_duplicate_ack_keeps_backoff(self, sim, transport_cfg):
        """Regression: a reordered copy of an old ACK — advancing neither
        cum_ack nor the SACK frontier — must not reset exponential backoff."""
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 500_000, transport_cfg)
        sender = conn.sender
        conn.start()
        sim.run(until=microseconds(100))  # let some ACKs arrive
        assert sender.cum_ack > 0 and not conn.completed
        # Black-hole the uplink and accumulate timeouts.
        net.set_link_state(a.id, net.adjacency[a.id][0], False)
        sim.run(until=milliseconds(100))
        assert sender._backoff >= 2
        backed_off = sender._backoff

        # A duplicate of the newest ACK already seen: no forward progress.
        stale = make_ack(
            sender.flow_id, b.id, a.id,
            ack_seq=sender.cum_ack,
            echo_seq=sender.highest_sacked,
            ecn_echo=False,
            ts_echo=-1,
        )
        sender.on_packet(stale)
        assert sender._backoff == backed_off  # unchanged

        # An ACK that does advance cum_ack resets the backoff.
        fresh = make_ack(
            sender.flow_id, b.id, a.id,
            ack_seq=sender.cum_ack + 1,
            echo_seq=sender.highest_sacked + 1,
            ecn_echo=False,
            ts_echo=-1,
        )
        sender.on_packet(fresh)
        assert sender._backoff == 0


class TestFairness:
    def test_jain_index_basics(self):
        assert jain_fairness([1, 1, 1, 1]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)
        assert jain_fairness([0, 0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1, 1])

    def test_incast_flows_finish_fairly(self, sim, transport_cfg):
        net, senders, rx = build_incast_star(
            sim, 4, delay_ps=microseconds(100), bottleneck_capacity=kilobytes(60)
        )
        conns = [Connection(net, s, rx, 150_000, transport_cfg) for s in senders]
        for c in conns:
            c.start()
        sim.run(until=milliseconds(2000))
        assert all(c.completed for c in conns)
        completion = [c.receiver.stats.completed_at for c in conns]
        # Buffer-race winners finish earlier, so completion-time fairness is
        # imperfect under loss — but no flow should be starved outright.
        assert jain_fairness(completion) > 0.5
        assert max(completion) < 20 * min(completion)
