"""Cross-cutting coverage: error hierarchy, stats snapshots, small accessors,
and a few behavioral corners not covered elsewhere."""

from dataclasses import replace

import pytest

from repro import errors
from repro.config import TransportConfig, small_interdc_config
from repro.detection.lossdetector import DetectorConfig
from repro.experiments.runner import IncastScenario, run_incast
from repro.experiments.sweeps import run_scheme_summary
from repro.net.network import Network
from repro.topology.leafspine import build_leafspine
from repro.transport.connection import Connection
from repro.units import kilobytes, megabytes, microseconds, milliseconds
from tests.conftest import build_pair


class TestErrorHierarchy:
    def test_every_library_error_is_a_repro_error(self):
        roots = [
            errors.ConfigError, errors.UnitError, errors.SimulationError,
            errors.SchedulingError, errors.TopologyError, errors.RoutingError,
            errors.TransportError, errors.ProxyError, errors.OrchestrationError,
            errors.WorkloadError, errors.ExperimentError,
        ]
        for cls in roots:
            assert issubclass(cls, errors.ReproError)

    def test_unit_error_is_also_a_value_error(self):
        assert issubclass(errors.UnitError, ValueError)

    def test_scheduling_error_specializes_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)


class TestStatsSnapshots:
    def test_sender_and_receiver_stats_as_dict(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 10_000, transport_cfg)
        conn.start()
        sim.run(until=milliseconds(50))
        snd = conn.sender.stats.as_dict()
        rcv = conn.receiver.stats.as_dict()
        assert snd["data_packets_sent"] == conn.total_packets
        assert rcv["bytes_received"] == 10_000
        assert snd["completed_at"] is not None

    def test_queue_stats_as_dict(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 10_000, transport_cfg)
        conn.start()
        sim.run(until=milliseconds(50))
        snapshot = a.nic.queue.stats.as_dict()
        assert snapshot["enqueued"] >= conn.total_packets
        assert set(snapshot) >= {"dropped", "trimmed", "marked"}

    def test_proxy_stats_as_dict(self, sim):
        from repro.proxy.streamlined import ProxyStats
        stats = ProxyStats()
        stats.data_forwarded = 3
        assert stats.as_dict()["data_forwarded"] == 3


class TestSmallAccessors:
    def test_fabric_host_accessor(self, sim):
        from repro.config import FabricConfig
        net = Network(sim)
        fabric = build_leafspine(net, FabricConfig(spines=1, leaves=1, servers_per_leaf=3))
        assert fabric.host(2) is fabric.hosts[2]

    def test_incast_result_ict_ms(self):
        scenario = IncastScenario(
            degree=2, total_bytes=megabytes(2),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        result = run_incast(scenario)
        assert result.ict_ms == pytest.approx(result.ict_ps / 1e9)

    def test_relay_chain_needs_relays(self, sim, transport_cfg):
        from repro.errors import ProxyError
        from repro.proxy.cascade import build_relay_chain
        net, a, b = build_pair(sim)
        with pytest.raises(ProxyError):
            build_relay_chain(net, a, b, 100, transport_cfg, [])


class TestBehavioralCorners:
    def test_degree_one_is_no_incast(self):
        scenario = IncastScenario(
            degree=1, total_bytes=megabytes(8),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        base = run_incast(scenario)
        prox = run_incast(replace(scenario, scheme="streamlined"))
        assert base.completed and prox.completed
        # one flow cannot self-incast: proxy buys nothing
        assert prox.ict_ps == pytest.approx(base.ict_ps, rel=0.2)
        assert base.counters.packets_dropped == 0

    def test_single_tiny_packet_through_proxy(self):
        scenario = IncastScenario(
            degree=1, total_bytes=100, scheme="streamlined",
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        result = run_incast(scenario)
        assert result.completed

    def test_sender_start_is_idempotent(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 5_000, transport_cfg)
        conn.sender.start()
        conn.sender.start()
        sim.run(until=milliseconds(50))
        assert conn.completed
        assert conn.receiver.stats.duplicate_packets == 0

    def test_trimless_scenario_uses_custom_detector(self):
        scenario = IncastScenario(
            degree=4, total_bytes=megabytes(16), scheme="trimless",
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
            detector=DetectorConfig(packet_threshold=4,
                                    reorder_window_ps=microseconds(10)),
        )
        result = run_incast(scenario)
        assert result.completed
        assert result.proxy_nacks_sent > 0

    def test_scheme_summary_uses_distinct_seeds(self):
        scenario = IncastScenario(
            degree=4, total_bytes=megabytes(16),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        summary, results = run_scheme_summary(scenario, reps=3, seed0=10)
        assert [r.scenario.seed for r in results] == [10, 11, 12]
        # spraying differs across seeds -> some ICT spread
        assert summary.ict.maximum > summary.ict.minimum

    def test_collector_caps_per_port_listing(self):
        scenario = IncastScenario(
            degree=4, total_bytes=megabytes(16),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        result = run_incast(scenario)
        assert len(result.counters.per_port_max) <= 16
