"""Failure injection: port up/down semantics and transport resilience."""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import TopologyError
from repro.net.packet import make_data
from repro.transport.connection import Connection
from repro.units import megabytes, microseconds, milliseconds
from tests.conftest import build_pair


class TestPortUpDown:
    def test_down_port_drops_offers(self, sim):
        net, a, b = build_pair(sim)
        b.register_handler(1, lambda p: None)
        a.nic.set_up(False)
        a.send(make_data(1, 0, a.id, b.id, payload_bytes=100))
        sim.run()
        assert a.nic.dropped_while_down == 1
        assert a.nic.tx_packets == 0

    def test_packet_mid_flight_is_lost(self, sim):
        net, a, b = build_pair(sim)
        got = []
        b.register_handler(1, lambda p: got.append(p.seq))
        a.send(make_data(1, 0, a.id, b.id, payload_bytes=100_000))
        sim.schedule(1, lambda: a.nic.set_up(False))  # during serialization
        sim.run()
        assert got == []

    def test_queue_survives_and_resumes(self, sim):
        net, a, b = build_pair(sim)
        got = []
        b.register_handler(1, lambda p: got.append(p.seq))
        a.nic.set_up(False)
        sim.run()
        a.nic.set_up(True)  # nothing queued while down (offers dropped)
        a.send(make_data(1, 5, a.id, b.id, payload_bytes=100))
        sim.run()
        assert got == [5]

    def test_set_up_idempotent(self, sim):
        net, a, b = build_pair(sim)
        a.nic.set_up(True)
        a.nic.set_up(False)
        a.nic.set_up(False)
        assert not a.nic.up


class TestNetworkFailureApi:
    def test_set_link_state_both_directions(self, sim):
        net, a, b = build_pair(sim)
        switch_id = net.adjacency[a.id][0]
        net.set_link_state(a.id, switch_id, False)
        assert not a.nic.up
        assert not net.nodes[switch_id].ports[a.id].up
        net.set_link_state(a.id, switch_id, True)
        assert a.nic.up

    def test_unknown_link_rejected(self, sim):
        net, a, b = build_pair(sim)
        with pytest.raises(TopologyError):
            net.set_link_state(a.id, b.id, False)  # hosts are not adjacent

    def test_fail_link_schedules_down_and_up(self, sim):
        net, a, b = build_pair(sim)
        switch_id = net.adjacency[a.id][0]
        net.fail_link(a.id, switch_id, at_ps=1000, duration_ps=500)
        sim.run(until=1200)
        assert not a.nic.up
        sim.run(until=2000)
        assert a.nic.up

    def test_fail_host_targets_access_link(self, sim):
        net, a, b = build_pair(sim)
        net.fail_host(a.id, at_ps=10, duration_ps=10)
        sim.run(until=15)
        assert not a.nic.up

    def test_fail_host_validates(self, sim):
        net, a, b = build_pair(sim)
        switch_id = net.adjacency[a.id][0]
        with pytest.raises(TopologyError):
            net.fail_host(switch_id, at_ps=0, duration_ps=1)

    def test_duration_must_be_positive(self, sim):
        net, a, b = build_pair(sim)
        switch_id = net.adjacency[a.id][0]
        with pytest.raises(TopologyError):
            net.fail_link(a.id, switch_id, at_ps=0, duration_ps=0)


class TestTransportUnderFailure:
    def test_transfer_survives_transient_access_failure(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 200_000, transport_cfg)
        # kill the sender's access link mid-transfer for 200us
        net.fail_host(a.id, at_ps=microseconds(20), duration_ps=microseconds(200))
        conn.start()
        sim.run(until=milliseconds(2000))
        assert conn.completed
        assert conn.receiver.stats.bytes_received == 200_000
        assert conn.sender.stats.retransmissions > 0

    def test_transfer_survives_receiver_side_failure(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 200_000, transport_cfg)
        net.fail_host(b.id, at_ps=microseconds(20), duration_ps=microseconds(300))
        conn.start()
        sim.run(until=milliseconds(2000))
        assert conn.completed

    def test_interdc_incast_survives_backbone_blip(self, transport_cfg):
        from repro.experiments.runner import IncastScenario, run_incast
        from repro.sim.simulator import Simulator
        from repro.topology.interdc import build_interdc
        # one backbone link flaps during the incast; spraying rides the
        # remaining equal-cost paths and RACK repairs the black-holed packets
        sim = Simulator(seed=0)
        topo = build_interdc(sim, small_interdc_config())
        net = topo.net
        router = topo.backbone[0]
        spine_id = net.adjacency[router.id][0]
        conn = Connection(
            net, topo.hosts(0)[0], topo.hosts(1)[0], megabytes(4), transport_cfg
        )
        net.fail_link(router.id, spine_id, at_ps=microseconds(100),
                      duration_ps=milliseconds(1))
        conn.start()
        sim.run(until=milliseconds(5000))
        assert conn.completed
        assert conn.receiver.stats.bytes_received == megabytes(4)
