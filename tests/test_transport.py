"""Transport endpoints over tiny networks: delivery, loss recovery, NACKs."""

import pytest

from repro.config import TransportConfig
from repro.net.packet import PacketType, make_nack
from repro.transport.connection import Connection, make_congestion_control
from repro.errors import TransportError
from repro.units import kilobytes, megabytes, microseconds, milliseconds
from tests.conftest import build_incast_star, build_pair


def run_transfer(sim, net, src, dst, nbytes, cfg, **kw):
    conn = Connection(net, src, dst, nbytes, cfg, **kw)
    conn.start()
    sim.run(until=milliseconds(500))
    return conn


class TestLosslessTransfer:
    def test_single_packet_flow(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = run_transfer(sim, net, a, b, 100, transport_cfg)
        assert conn.completed
        assert conn.receiver.stats.bytes_received == 100
        assert conn.sender.stats.retransmissions == 0

    def test_multi_packet_flow_delivers_all_bytes(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = run_transfer(sim, net, a, b, 100_000, transport_cfg)
        assert conn.completed
        assert conn.receiver.stats.bytes_received == 100_000
        assert conn.receiver.cum == conn.total_packets

    def test_tail_packet_carries_partial_payload(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = run_transfer(sim, net, a, b, 1500, transport_cfg)  # 1024 + 476
        assert conn.total_packets == 2
        assert conn.completed
        assert conn.receiver.stats.bytes_received == 1500

    def test_acks_flow_back(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = run_transfer(sim, net, a, b, 10_000, transport_cfg)
        assert conn.sender.stats.acks_received == conn.receiver.stats.acks_sent
        assert conn.sender.stats.acks_received >= conn.total_packets

    def test_rtt_estimate_converges_to_path(self, sim, transport_cfg):
        net, a, b = build_pair(sim, delay_ps=microseconds(5))
        conn = run_transfer(sim, net, a, b, 50_000, transport_cfg)
        # 4 propagation legs of 5us plus serialization: srtt in the right ballpark
        assert microseconds(15) < conn.rtt.srtt < microseconds(80)

    def test_completion_callbacks_fire(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        done = []
        conn = Connection(net, a, b, 5000, transport_cfg,
                          on_receiver_complete=lambda r: done.append("rx"),
                          on_sender_complete=lambda s: done.append("tx"))
        conn.start()
        sim.run(until=milliseconds(100))
        assert "rx" in done and "tx" in done

    def test_start_delay(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 1000, transport_cfg)
        conn.start(delay_ps=milliseconds(1))
        sim.run(until=milliseconds(50))
        assert conn.receiver.stats.completed_at > milliseconds(1)


class TestInitialWindow:
    def test_window_scales_with_path_bdp(self, sim, transport_cfg):
        net, a, b = build_pair(sim, delay_ps=milliseconds(1))
        long_conn = Connection(net, a, b, 10_000, transport_cfg)
        assert long_conn.cc.cwnd == pytest.approx(
            long_conn.bdp_bytes / transport_cfg.payload_bytes, rel=0.01
        )
        assert long_conn.base_rtt_ps > 2 * milliseconds(1)

    def test_min_rto_scales_with_rtt(self, sim, transport_cfg):
        net, a, b = build_pair(sim, delay_ps=milliseconds(1))
        conn = Connection(net, a, b, 10_000, transport_cfg)
        assert conn.rtt.min_rto >= transport_cfg.rto_floor_rtt_multiple * 2 * milliseconds(1)

    def test_explicit_min_rto_override(self, sim):
        cfg = TransportConfig(payload_bytes=1024, min_rto_ps=milliseconds(7))
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 10_000, cfg)
        assert conn.rtt.min_rto == milliseconds(7)


class TestLossRecovery:
    def test_recovers_from_bottleneck_drops(self, sim, transport_cfg):
        # A 100us path fattens the BDP (and thus the initial windows) far
        # beyond the 60KB bottleneck buffer: first-RTT drops are guaranteed.
        net, senders, rx = build_incast_star(
            sim, 4, delay_ps=microseconds(100), bottleneck_capacity=kilobytes(60)
        )
        conns = [
            Connection(net, s, rx, 200_000, transport_cfg, label=f"f{i}")
            for i, s in enumerate(senders)
        ]
        for c in conns:
            c.start()
        sim.run(until=milliseconds(2000))
        assert all(c.completed for c in conns)
        total_retx = sum(c.sender.stats.retransmissions for c in conns)
        assert total_retx > 0  # losses actually happened and were repaired

    def test_every_byte_delivered_exactly_once(self, sim, transport_cfg):
        net, senders, rx = build_incast_star(
            sim, 2, delay_ps=microseconds(100), bottleneck_capacity=kilobytes(40)
        )
        conns = [Connection(net, s, rx, 150_000, transport_cfg) for s in senders]
        for c in conns:
            c.start()
        sim.run(until=milliseconds(2000))
        for c in conns:
            assert c.receiver.stats.bytes_received == 150_000

    def test_trimming_bottleneck_generates_nacks(self, sim, transport_cfg):
        net, senders, rx = build_incast_star(
            sim, 4, delay_ps=microseconds(100),
            bottleneck_capacity=kilobytes(60), trimming=True,
        )
        conns = [Connection(net, s, rx, 200_000, transport_cfg) for s in senders]
        for c in conns:
            c.start()
        sim.run(until=milliseconds(2000))
        assert all(c.completed for c in conns)
        nacks = sum(c.sender.stats.nacks_received for c in conns)
        assert nacks > 0
        # the receiver (not a proxy) reflected the trimmed headers
        assert sum(c.receiver.stats.nacks_sent for c in conns) == nacks

    def test_nack_triggers_retransmission(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 50_000, transport_cfg)
        conn.start()
        sim.run(max_events=4)  # a few packets are in flight
        sender = conn.sender
        target = 0
        assert sender._state.get(target) is not None
        nack = make_nack(conn.flow_id, target, b.id, a.id, ts_echo=sender._sent_ts[target])
        cuts_before = sender.cc.cuts
        sender.on_packet(nack)
        assert sender.stats.nacks_received == 1
        assert sender.cc.cuts == cuts_before + 1  # NACK cut the window
        assert sender._state[target] != 0  # seq 0 is marked lost
        sim.run(until=milliseconds(100))
        # The spurious NACK is repaired (or superseded by the original copy)
        # and the transfer still completes exactly.
        assert conn.completed
        assert conn.receiver.stats.bytes_received == 50_000

    def test_duplicate_nack_ignored(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 50_000, transport_cfg)
        conn.start()
        sim.run(max_events=4)
        sender = conn.sender
        nack = make_nack(conn.flow_id, 0, b.id, a.id, ts_echo=sender._sent_ts[0])
        sender.on_packet(nack)
        cuts_after_first = sender.cc.cuts
        sender.on_packet(make_nack(conn.flow_id, 0, b.id, a.id, ts_echo=1))
        assert sender.cc.cuts == cuts_after_first
        sim.run(until=milliseconds(100))
        assert conn.completed

    def test_timeout_resets_window(self, sim, transport_cfg):
        # Deliver data into a black hole: receiver host has no handler wired
        # for ACK return (we drop ACKs by unregistering the sender handler).
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 10_000, transport_cfg)
        a.unregister_handler(conn.flow_id)  # sender never hears back
        a.register_handler(conn.flow_id, lambda p: None)
        conn.start()
        sim.run(until=milliseconds(300))
        assert conn.sender.stats.timeouts >= 1
        assert conn.sender.cc.cwnd <= conn.cc.ssthresh


class TestRelayMode:
    def test_release_gates_transmission(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 5 * 1024, transport_cfg, available_packets=0)
        conn.start()
        sim.run(until=milliseconds(1))
        assert conn.receiver.stats.data_packets == 0
        conn.sender.release(2)
        sim.run(until=milliseconds(2))
        assert conn.receiver.cum == 2
        conn.sender.release(3)
        sim.run(until=milliseconds(10))
        assert conn.completed

    def test_release_caps_at_total(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 2048, transport_cfg, available_packets=0)
        conn.sender.release(100)
        assert conn.sender.available == conn.total_packets

    def test_negative_release_rejected(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 2048, transport_cfg, available_packets=0)
        with pytest.raises(TransportError):
            conn.sender.release(-1)


class TestConnectionWiring:
    def test_distinct_flow_ids(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        c1 = Connection(net, a, b, 1000, transport_cfg)
        c2 = Connection(net, b, a, 1000, transport_cfg)
        assert c1.flow_id != c2.flow_id

    def test_teardown_unregisters(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 1000, transport_cfg)
        conn.teardown()
        assert conn.flow_id not in a.handlers
        assert conn.flow_id not in b.handlers

    def test_same_host_rejected(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        with pytest.raises(TransportError):
            Connection(net, a, a, 1000, transport_cfg)

    def test_zero_bytes_rejected(self, sim, transport_cfg):
        net, a, b = build_pair(sim)
        with pytest.raises(TransportError):
            Connection(net, a, b, 0, transport_cfg)

    def test_cc_factory(self, transport_cfg):
        assert make_congestion_control(transport_cfg, 10).cwnd == 10
        assert make_congestion_control(transport_cfg, 10, "aimd").cwnd == 10
        unlimited = make_congestion_control(transport_cfg, 10, "unlimited")
        assert unlimited.can_send(10**9)
        bbr = make_congestion_control(transport_cfg, 10, "bbr", base_rtt_ps=10**6)
        assert bbr.cwnd == 10
        with pytest.raises(TransportError):
            make_congestion_control(transport_cfg, 10, "carrier-pigeon")
