"""Unit arithmetic and parsing."""

import pytest

from repro import units
from repro.errors import UnitError


class TestTimeConversions:
    def test_base_units_are_exact(self):
        assert units.nanoseconds(1) == 1_000
        assert units.microseconds(1) == 1_000_000
        assert units.milliseconds(1) == 1_000_000_000
        assert units.seconds(1) == 1_000_000_000_000

    def test_fractional_values_round(self):
        assert units.microseconds(1.5) == 1_500_000
        assert units.milliseconds(0.0000005) == 500

    def test_roundtrip_to_seconds(self):
        assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)
        assert units.to_microseconds(units.microseconds(17)) == pytest.approx(17)
        assert units.to_milliseconds(units.milliseconds(3)) == pytest.approx(3)


class TestBandwidth:
    def test_100gbps_is_80ps_per_byte(self):
        assert units.serialization_delay_ps(1, units.gbps(100)) == 80

    def test_full_packet_at_100g(self):
        assert units.serialization_delay_ps(4096, units.gbps(100)) == 327_680

    def test_zero_bytes_is_instant(self):
        assert units.serialization_delay_ps(0, units.gbps(1)) == 0

    def test_invalid_rate_raises(self):
        with pytest.raises(UnitError):
            units.serialization_delay_ps(100, 0)
        with pytest.raises(UnitError):
            units.serialization_delay_ps(-1, units.gbps(1))

    def test_bdp_paper_scale(self):
        # 100 Gb/s x 4 ms RTT ~= 50 MB: the paper's destructive initial window.
        bdp = units.bandwidth_delay_product_bytes(units.gbps(100), units.milliseconds(4))
        assert bdp == 50_000_000

    def test_bdp_validates(self):
        with pytest.raises(UnitError):
            units.bandwidth_delay_product_bytes(0, 100)
        with pytest.raises(UnitError):
            units.bandwidth_delay_product_bytes(units.gbps(1), -5)


class TestSizes:
    def test_decimal_prefixes(self):
        assert units.kilobytes(33.2) == 33_200
        assert units.megabytes(17.015) == 17_015_000
        assert units.gigabytes(1) == 1_000_000_000


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [("1ms", units.milliseconds(1)), ("250us", units.microseconds(250)),
         ("3ns", units.nanoseconds(3)), ("1.5s", units.seconds(1.5)), ("42", 42),
         (17, 17), (2.6, 3)],
    )
    def test_durations(self, text, expected):
        assert units.parse_duration(text) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [("100Gbps", 100e9), ("10gbps", 10e9), ("1.5Mbps", 1.5e6), ("9600bps", 9600),
         ("12", 12.0)],
    )
    def test_rates(self, text, expected):
        assert units.parse_rate(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text,expected",
        [("100MB", 100_000_000), ("33.2KB", 33_200), ("1GB", 1_000_000_000), ("64B", 64),
         ("77", 77)],
    )
    def test_sizes(self, text, expected):
        assert units.parse_size(text) == expected

    @pytest.mark.parametrize("text", ["abc", "1 parsec", "ms", "", "1..2ms"])
    def test_garbage_raises(self, text):
        with pytest.raises(UnitError):
            units.parse_duration(text)

    def test_unknown_units_raise(self):
        with pytest.raises(UnitError):
            units.parse_rate("10 knots")
        with pytest.raises(UnitError):
            units.parse_size("10 furlongs")


class TestFormatting:
    def test_duration_adaptive(self):
        assert units.format_duration(units.seconds(1.5)) == "1.500s"
        assert units.format_duration(units.milliseconds(2)) == "2.000ms"
        assert units.format_duration(units.microseconds(3)) == "3.000us"
        assert units.format_duration(units.nanoseconds(4)) == "4.000ns"
        assert units.format_duration(500) == "500ps"

    def test_size_adaptive(self):
        assert units.format_size(1_500_000_000) == "1.50GB"
        assert units.format_size(2_000_000) == "2.00MB"
        assert units.format_size(33_200) == "33.20KB"
        assert units.format_size(64) == "64B"
