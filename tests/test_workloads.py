"""Workload generators: byte conservation, shapes, and validation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    MoEConfig,
    QuorumConfig,
    ReconstructionConfig,
    moe_dispatch_jobs,
    quorum_write_jobs,
    reconstruction_jobs,
    uniform_incast,
)
from repro.workloads.incast import IncastJob


class TestIncastJob:
    def test_uniform_split_conserves_bytes(self):
        job = uniform_incast("x", degree=3, total_bytes=100)
        assert job.total_bytes == 100
        assert job.degree == 3
        assert max(job.flow_bytes) - min(job.flow_bytes) <= 1

    def test_sender_offset(self):
        job = uniform_incast("x", degree=2, total_bytes=10, sender_offset=5)
        assert job.sender_indices == (5, 6)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            IncastJob("x", (0, 1), 0, (100,))

    def test_zero_flow_rejected(self):
        with pytest.raises(WorkloadError):
            IncastJob("x", (0,), 0, (0,))

    def test_negative_start_rejected(self):
        with pytest.raises(WorkloadError):
            IncastJob("x", (0,), 0, (1,), start_ps=-1)

    def test_degree_validation(self):
        with pytest.raises(WorkloadError):
            uniform_incast("x", degree=0, total_bytes=10)
        with pytest.raises(WorkloadError):
            uniform_incast("x", degree=20, total_bytes=10)


class TestMoE:
    def test_token_conservation(self):
        cfg = MoEConfig(senders=4, experts=3, tokens_per_sender=100, token_bytes=10)
        jobs = moe_dispatch_jobs(cfg)
        total = sum(job.total_bytes for job in jobs)
        assert total == 4 * 100 * 10

    def test_one_job_per_expert_per_step(self):
        cfg = MoEConfig(senders=4, experts=3, steps=2, tokens_per_sender=500)
        jobs = moe_dispatch_jobs(cfg)
        assert len(jobs) == 6
        receivers = {job.receiver_index for job in jobs}
        assert receivers == {0, 1, 2}

    def test_zipf_skew_loads_first_expert_most(self):
        cfg = MoEConfig(senders=8, experts=4, tokens_per_sender=2000, zipf_skew=1.5)
        jobs = moe_dispatch_jobs(cfg)
        by_expert = {job.receiver_index: job.total_bytes for job in jobs}
        assert by_expert[0] > by_expert[3]

    def test_uniform_gating_balances(self):
        cfg = MoEConfig(senders=8, experts=4, tokens_per_sender=5000, zipf_skew=0.0)
        jobs = moe_dispatch_jobs(cfg)
        sizes = [job.total_bytes for job in jobs]
        assert max(sizes) < 1.2 * min(sizes)

    def test_steps_are_spaced(self):
        cfg = MoEConfig(steps=3, step_interval_ps=1000)
        jobs = moe_dispatch_jobs(cfg)
        starts = sorted({job.start_ps for job in jobs})
        assert starts == [0, 1000, 2000]

    def test_deterministic_by_seed(self):
        a = moe_dispatch_jobs(MoEConfig(seed=5))
        b = moe_dispatch_jobs(MoEConfig(seed=5))
        assert [j.flow_bytes for j in a] == [j.flow_bytes for j in b]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MoEConfig(senders=0)
        with pytest.raises(WorkloadError):
            MoEConfig(zipf_skew=-1)


class TestStorageReconstruction:
    def test_degree_is_k(self):
        jobs = reconstruction_jobs(ReconstructionConfig(data_fragments=6))
        assert jobs[0].degree == 6
        assert all(b == 16_000_000 for b in jobs[0].flow_bytes)

    def test_senders_are_distinct_stripe_servers(self):
        jobs = reconstruction_jobs(ReconstructionConfig(data_fragments=6, servers=10))
        assert len(set(jobs[0].sender_indices)) == 6
        assert max(jobs[0].sender_indices) < 10

    def test_multiple_reconstructions_spread(self):
        cfg = ReconstructionConfig(reconstructions=3, spread_ps=500)
        jobs = reconstruction_jobs(cfg)
        assert [j.start_ps for j in jobs] == [0, 500, 1000]
        assert len({j.receiver_index for j in jobs}) == 3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ReconstructionConfig(data_fragments=10, servers=5)


class TestQuorumWrites:
    def test_degree_is_shard_count(self):
        jobs = quorum_write_jobs(QuorumConfig(shards=12))
        assert jobs[0].degree == 12

    def test_jitter_bounds(self):
        cfg = QuorumConfig(shards=50, batch_bytes_mean=1000, batch_bytes_jitter=0.5)
        job = quorum_write_jobs(cfg)[0]
        assert all(500 <= b <= 1500 for b in job.flow_bytes)

    def test_no_jitter_is_exact(self):
        cfg = QuorumConfig(shards=4, batch_bytes_mean=1000, batch_bytes_jitter=0.0)
        job = quorum_write_jobs(cfg)[0]
        assert all(b == 1000 for b in job.flow_bytes)

    def test_epochs(self):
        cfg = QuorumConfig(epochs=2, epoch_interval_ps=77)
        jobs = quorum_write_jobs(cfg)
        assert [j.start_ps for j in jobs] == [0, 77]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            QuorumConfig(batch_bytes_jitter=1.0)


class TestPoissonArrivals:
    def _cfg(self, **kw):
        from repro.workloads import ArrivalConfig
        defaults = dict(jobs=10, mean_interarrival_ps=1_000_000, degree=2,
                        total_bytes_mean=1_000_000, receivers=3, sender_pool=6, seed=1)
        defaults.update(kw)
        return ArrivalConfig(**defaults)

    def test_jobs_ordered_by_start_time(self):
        from repro.workloads import poisson_incasts
        jobs = poisson_incasts(self._cfg())
        starts = [j.start_ps for j in jobs]
        assert starts == sorted(starts)
        assert len(jobs) == 10

    def test_interarrival_mean_roughly_respected(self):
        from repro.workloads import poisson_incasts
        jobs = poisson_incasts(self._cfg(jobs=2000))
        gaps = [b.start_ps - a.start_ps for a, b in zip(jobs, jobs[1:])]
        mean = sum(gaps) / len(gaps)
        assert 0.85e6 < mean < 1.15e6

    def test_senders_stay_within_pool(self):
        from repro.workloads import poisson_incasts
        jobs = poisson_incasts(self._cfg())
        for job in jobs:
            assert max(job.sender_indices) < 6
            assert len(set(job.sender_indices)) == job.degree

    def test_receivers_rotate(self):
        from repro.workloads import poisson_incasts
        jobs = poisson_incasts(self._cfg())
        assert {j.receiver_index for j in jobs} == {0, 1, 2}

    def test_sizes_jittered_around_mean(self):
        from repro.workloads import poisson_incasts
        jobs = poisson_incasts(self._cfg(jobs=200, total_bytes_jitter=0.3))
        sizes = [j.total_bytes for j in jobs]
        assert all(700_000 <= s <= 1_300_000 for s in sizes)
        assert len(set(sizes)) > 50  # actually jittered

    def test_deterministic_by_seed(self):
        from repro.workloads import poisson_incasts
        a = poisson_incasts(self._cfg(seed=9))
        b = poisson_incasts(self._cfg(seed=9))
        assert [(j.start_ps, j.flow_bytes) for j in a] == \
               [(j.start_ps, j.flow_bytes) for j in b]

    def test_validation(self):
        import pytest as _pytest
        from repro.errors import WorkloadError
        from repro.workloads import ArrivalConfig
        with _pytest.raises(WorkloadError):
            ArrivalConfig(degree=10, sender_pool=4)
        with _pytest.raises(WorkloadError):
            ArrivalConfig(mean_interarrival_ps=0)

    def test_churn_run_end_to_end(self):
        from repro.config import TransportConfig, small_interdc_config
        from repro.orchestration import run_concurrent_incasts
        from repro.workloads import poisson_incasts
        from repro.units import milliseconds
        cfg = self._cfg(jobs=4, degree=2, total_bytes_mean=4_000_000,
                        mean_interarrival_ps=milliseconds(2), sender_pool=6)
        jobs = poisson_incasts(cfg)
        result = run_concurrent_incasts(
            jobs, scheme="streamlined", strategy="central",
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        assert result.completed
        assert len(result.ict_ps) == 4


class TestMoECombine:
    def test_one_job_per_worker(self):
        from repro.workloads import MoEConfig, moe_combine_jobs
        cfg = MoEConfig(senders=4, experts=3, tokens_per_sender=500)
        jobs = moe_combine_jobs(cfg)
        assert len(jobs) == 4
        assert {j.receiver_index for j in jobs} == {0, 1, 2, 3}

    def test_combine_conserves_dispatch_bytes(self):
        from repro.workloads import MoEConfig, moe_combine_jobs, moe_dispatch_jobs
        cfg = MoEConfig(senders=4, experts=3, tokens_per_sender=500, seed=3)
        dispatched = sum(j.total_bytes for j in moe_dispatch_jobs(cfg))
        combined = sum(j.total_bytes for j in moe_combine_jobs(cfg))
        assert dispatched == combined  # same gating assignment, same seed

    def test_combine_runs_reversed_end_to_end(self):
        from repro.config import TransportConfig, small_interdc_config
        from repro.orchestration import run_concurrent_incasts
        from repro.workloads import MoEConfig, moe_combine_jobs
        cfg = MoEConfig(senders=3, experts=2, tokens_per_sender=800,
                        token_bytes=4096, seed=1)
        jobs = moe_combine_jobs(cfg)
        result = run_concurrent_incasts(
            jobs, scheme="streamlined", strategy="central",
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
            reverse=True,
        )
        assert result.completed
        assert len(result.ict_ps) == len(jobs)
