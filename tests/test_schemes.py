"""SchemeRegistry dispatch, third-party registration, and deprecation shims."""

import warnings
from dataclasses import replace

import pytest

from repro._compat import _deprecated, _reset_deprecation_registry
from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.runner import (
    SCHEMES,
    IncastScenario,
    build_scenario,
    run_incast,
)
from repro.schemes import (
    SCHEME_REGISTRY,
    SchemeContext,
    SchemeSpec,
    SchemeWiring,
    register_scheme,
)
from repro.transport.connection import Connection
from repro.units import kilobytes


def _scenario(**overrides):
    base = IncastScenario(
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )
    return replace(base, **overrides) if overrides else base


class TestRegistry:
    def test_builtins_registered_in_paper_order(self):
        assert SCHEME_REGISTRY.names() == (
            "baseline", "naive", "streamlined", "trimless", "proxy-failover"
        )
        assert SCHEMES == SCHEME_REGISTRY.names()
        assert SCHEME_REGISTRY.trimming_names() == (
            "streamlined", "proxy-failover"
        )

    def test_unknown_scheme_error_lists_registered_names(self):
        with pytest.raises(ExperimentError) as exc:
            SCHEME_REGISTRY.get("bogus")
        message = str(exc.value)
        for name in SCHEME_REGISTRY.names():
            assert name in message

    def test_scenario_validation_goes_through_the_registry(self):
        with pytest.raises(ExperimentError, match="registered schemes"):
            IncastScenario(scheme="bogus")

    def test_collision_requires_replace(self):
        spec = SCHEME_REGISTRY.get("baseline")
        with pytest.raises(ExperimentError, match="already registered"):
            SCHEME_REGISTRY.register(spec)
        SCHEME_REGISTRY.register(spec, replace=True)  # idempotent override

    def test_spec_shape_is_validated(self):
        def wire(ctx):
            return SchemeWiring()

        with pytest.raises(ExperimentError, match="plane"):
            SchemeSpec(name="x", display_name="x", trimming=False,
                       plane="sideways", crash_semantics="", make_proxy=None,
                       wire=wire)
        with pytest.raises(ExperimentError, match="make_proxy"):
            SchemeSpec(name="x", display_name="x", trimming=False,
                       plane="via", crash_semantics="", make_proxy=None,
                       wire=wire)

    def test_builtin_specs_carry_crash_semantics(self):
        for spec in SCHEME_REGISTRY:
            assert spec.crash_semantics
            assert spec.display_name


class TestThirdPartyScheme:
    def test_registered_scheme_runs_and_caches(self, tmp_path):
        @register_scheme("test-direct", display_name="Test Direct")
        def wire_test_direct(ctx: SchemeContext) -> SchemeWiring:
            wiring = SchemeWiring()
            for i, (host, size) in enumerate(zip(ctx.senders, ctx.sizes)):
                conn = Connection(
                    ctx.net, host, ctx.receiver, size, ctx.scenario.transport,
                    on_receiver_complete=ctx.make_on_done(i),
                    on_sender_fail=ctx.make_on_fail(i),
                    label=f"td{i}",
                )
                wiring.senders.append(conn.sender)
                conn.start()
            return wiring

        try:
            scenario = build_scenario(
                "test-direct", degree=2, total_bytes=kilobytes(100),
                interdc=small_interdc_config(),
                transport=TransportConfig(payload_bytes=4096),
            )
            result = run_incast(scenario)
            assert result.completed
            # Identical wiring to baseline → identical simulation outcome.
            reference = run_incast(_scenario(scheme="baseline"))
            assert result.ict_ps == reference.ict_ps

            # The parallel engine's cache key hashes the scenario (scheme
            # string included), so a third-party scheme round-trips the
            # on-disk cache like any built-in.
            from repro.experiments.parallel import (
                ExperimentEngine, ResultCache, scenario_key,
            )
            assert scenario_key(scenario) != scenario_key(
                _scenario(scheme="baseline"))
            cache = ResultCache(tmp_path / "cache")
            engine = ExperimentEngine(workers=1, cache=cache)
            [cold] = engine.run_incasts([scenario])
            [warm] = engine.run_incasts([scenario])
            assert not cold.from_cache and warm.from_cache
            assert warm.ict_ps == cold.ict_ps
        finally:
            SCHEME_REGISTRY.unregister("test-direct")

    def test_unregistered_scheme_stops_validating(self):
        @register_scheme("test-ephemeral")
        def wire_ephemeral(ctx):
            return SchemeWiring()

        assert "test-ephemeral" in SCHEME_REGISTRY
        SCHEME_REGISTRY.unregister("test-ephemeral")
        with pytest.raises(ExperimentError):
            IncastScenario(scheme="test-ephemeral")


class TestDeprecationHelper:
    def setup_method(self):
        _reset_deprecation_registry()

    def teardown_method(self):
        _reset_deprecation_registry()

    def test_warns_exactly_once_per_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                _deprecated("one site", stacklevel=2)
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)

    def test_distinct_sites_each_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _deprecated("site message", stacklevel=2)
            _deprecated("site message", stacklevel=2)
        assert len(caught) == 2

    def test_removed_run_incast_kwarg_raises_every_time(self):
        scenario = _scenario()
        for _ in range(3):
            with pytest.raises(TypeError, match="RunOptions"):
                run_incast(scenario, sanitize=False)


class TestBuildScenario:
    def test_defaults_to_baseline(self):
        assert build_scenario().scheme == "baseline"

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ExperimentError):
            build_scenario("bogus")

    def test_top_level_export(self):
        import repro

        assert repro.build_scenario is build_scenario
        assert repro.SCHEME_REGISTRY is SCHEME_REGISTRY
        assert repro.register_scheme is register_scheme
