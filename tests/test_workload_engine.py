"""The workload registry and the open-loop production-traffic engine."""

import math

import pytest

import repro
from repro.errors import ConfigError, WorkloadError
from repro.metrics.config import MODE_SKETCH, MetricsConfig
from repro.sim.rng import derive_stream
from repro.units import milliseconds, seconds
from repro.workloads.engine import (
    DiurnalCurve,
    OpenLoopEngine,
    WorkloadEngineConfig,
    rss_plateau_ok,
)
from repro.workloads.incast import IncastJob
from repro.workloads.registry import (
    WORKLOAD_REGISTRY,
    TenantRequest,
    WorkloadRegistry,
    WorkloadSpec,
    register_workload,
    tenant_jobs,
)
from repro.workloads.sizes import HeavyTailConfig


def _one_job(**params):
    return [
        IncastJob(
            name="probe",
            sender_indices=(0, 1),
            receiver_index=0,
            flow_bytes=(10, 10),
        )
    ]


class TestWorkloadRegistry:
    def test_builtins_are_registered(self):
        for name in ("uniform", "periodic", "poisson", "moe-dispatch",
                     "moe-combine", "ec-reconstruct", "quorum"):
            assert name in WORKLOAD_REGISTRY

    def test_tenant_names_are_the_engine_capable_subset(self):
        names = WORKLOAD_REGISTRY.tenant_names()
        assert "uniform" in names
        assert "quorum" in names
        assert "periodic" not in names  # no tenant builder

    def test_register_refuses_silent_redefinition(self):
        registry = WorkloadRegistry()
        spec = WorkloadSpec(name="w", display_name="W", build=_one_job)
        registry.register(spec)
        with pytest.raises(WorkloadError, match="already registered"):
            registry.register(spec)
        registry.register(spec, replace=True)  # explicit override is fine

    def test_unregister_then_get_reports_whats_left(self):
        registry = WorkloadRegistry()
        registry.register(WorkloadSpec(name="w", display_name="W", build=_one_job))
        registry.unregister("w")
        registry.unregister("w")  # idempotent
        with pytest.raises(WorkloadError, match="unknown workload"):
            registry.get("w")

    def test_decorator_registers_and_returns_the_builder(self):
        registry = WorkloadRegistry()

        @register_workload("probe", registry=registry, description="d")
        def build_probe(**params):
            return _one_job()

        assert registry.get("probe").build is build_probe
        assert registry.get("probe").tenant is None

    def test_build_workload_top_level_export(self):
        jobs = repro.build_workload("uniform", name="x", degree=4,
                                    total_bytes=4_000)
        assert len(jobs) == 1
        assert jobs[0].degree == 4
        assert repro.WORKLOAD_REGISTRY is WORKLOAD_REGISTRY


class TestTenantJobs:
    def _request(self, index=7):
        return TenantRequest(index=index, seed=1, total_bytes=100_000,
                             sender_pool=6, receiver_pool=4)

    def test_remaps_indices_onto_the_pools(self):
        spec = WORKLOAD_REGISTRY.get("uniform")
        jobs = tenant_jobs(spec, self._request(), start_ps=seconds(1),
                           sender_offset=4, receiver_offset=3)
        job = jobs[0]
        assert all(0 <= i < 6 for i in job.sender_indices)
        assert 0 <= job.receiver_index < 4
        assert job.start_ps >= seconds(1)
        assert job.total_bytes == 100_000

    def test_names_are_tenant_unique(self):
        spec = WORKLOAD_REGISTRY.get("uniform")
        a = tenant_jobs(spec, self._request(index=1), start_ps=0,
                        sender_offset=0, receiver_offset=0)
        b = tenant_jobs(spec, self._request(index=2), start_ps=0,
                        sender_offset=0, receiver_offset=0)
        assert a[0].name != b[0].name
        assert a[0].name.startswith("t1:")

    def test_rejects_specs_without_a_tenant_builder(self):
        spec = WORKLOAD_REGISTRY.get("periodic")
        with pytest.raises(WorkloadError, match="no open-loop tenant builder"):
            tenant_jobs(spec, self._request(), start_ps=0,
                        sender_offset=0, receiver_offset=0)

    def test_every_tenant_builder_respects_the_pools(self):
        for name in WORKLOAD_REGISTRY.tenant_names():
            spec = WORKLOAD_REGISTRY.get(name)
            jobs = tenant_jobs(spec, self._request(), start_ps=0,
                               sender_offset=5, receiver_offset=2)
            assert jobs, name
            for job in jobs:
                assert all(0 <= i < 6 for i in job.sender_indices), name
                assert 0 <= job.receiver_index < 4, name


class TestHeavyTail:
    def test_samples_stay_in_bounds(self):
        config = HeavyTailConfig(minimum_bytes=1_000, maximum_bytes=50_000,
                                 alpha=1.2)
        rng = derive_stream(0, "tail")
        for _ in range(5_000):
            assert 1_000 <= config.sample(rng) <= 50_000

    def test_empirical_mean_matches_analytic(self):
        config = HeavyTailConfig(minimum_bytes=10_000, maximum_bytes=1_000_000,
                                 alpha=1.5)
        rng = derive_stream(1, "tail-mean")
        draws = [config.sample(rng) for _ in range(40_000)]
        empirical = sum(draws) / len(draws)
        assert math.isclose(empirical, config.mean_bytes(), rel_tol=0.05)

    def test_alpha_one_mean_is_the_log_limit(self):
        config = HeavyTailConfig(minimum_bytes=1_000, maximum_bytes=100_000,
                                 alpha=1.0)
        near = HeavyTailConfig(minimum_bytes=1_000, maximum_bytes=100_000,
                               alpha=1.000001)
        assert math.isclose(config.mean_bytes(), near.mean_bytes(), rel_tol=1e-3)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HeavyTailConfig(minimum_bytes=0)
        with pytest.raises(WorkloadError):
            HeavyTailConfig(minimum_bytes=100, maximum_bytes=100)
        with pytest.raises(WorkloadError):
            HeavyTailConfig(alpha=0.0)


class TestDiurnalCurve:
    def test_multiplier_spans_trough_to_peak(self):
        curve = DiurnalCurve(period_ps=seconds(10), trough=0.2)
        assert math.isclose(curve.multiplier(0), 0.2)
        assert math.isclose(curve.multiplier(seconds(5)), 1.0)  # mid-period peak
        for t in range(0, 10):
            m = curve.multiplier(seconds(t))
            assert 0.2 <= m <= 1.0

    def test_curve_is_periodic(self):
        curve = DiurnalCurve(period_ps=seconds(3), trough=0.5)
        assert math.isclose(curve.multiplier(seconds(1)),
                            curve.multiplier(seconds(4)))

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiurnalCurve(period_ps=0)
        with pytest.raises(ConfigError):
            DiurnalCurve(trough=0.0)
        with pytest.raises(ConfigError):
            DiurnalCurve(trough=1.5)


class TestEngineConfig:
    def test_defaults_validate(self):
        config = WorkloadEngineConfig()
        assert config.scheme == "streamlined"
        assert config.metrics.mode == MODE_SKETCH

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(horizon_ps=0)
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(segment_ps=seconds(999))  # > horizon
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(peak_arrivals_per_s=0.0)
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(load_factor=-1.0)
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(strategy="psychic")
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(mix=())
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(mix=(("uniform", -1.0),))
        with pytest.raises(ConfigError):
            WorkloadEngineConfig(slo_ps=0)

    def test_engine_rejects_non_tenant_mixes(self):
        with pytest.raises(WorkloadError, match="no tenant builder"):
            OpenLoopEngine(WorkloadEngineConfig(mix=(("periodic", 1.0),)))


def _short_config(**overrides):
    defaults = dict(
        scheme="streamlined",
        horizon_ps=seconds(2),
        segment_ps=milliseconds(500),
        peak_arrivals_per_s=40.0,
        sizes=HeavyTailConfig(minimum_bytes=64_000, maximum_bytes=2_000_000,
                              alpha=1.3),
        diurnal=DiurnalCurve(period_ps=seconds(2), trough=0.5),
        metrics=MetricsConfig(mode=MODE_SKETCH),
        seed=3,
    )
    defaults.update(overrides)
    return WorkloadEngineConfig(**defaults)


class TestOpenLoopEngine:
    def test_short_run_completes_its_jobs(self):
        result = OpenLoopEngine(_short_config()).run()
        assert result.tenants > 10
        assert result.jobs_launched > result.tenants / 2
        assert result.jobs_completed == result.jobs_launched
        assert result.completion == 1.0  # repro: allow[float-eq] - exact ratio of equal ints
        assert 0.0 <= result.attainment <= 1.0
        assert result.bytes_completed == result.bytes_offered
        assert result.ict.count == result.jobs_completed
        assert result.counters.tx_packets > 0

    def test_thinning_drops_some_arrivals(self):
        result = OpenLoopEngine(_short_config()).run()
        fold_total = result.tenants  # admitted
        engine = OpenLoopEngine(_short_config())
        engine.run()
        assert engine.fold.tenants_thinned > 0
        assert engine.fold.tenants_arrived == (
            engine.fold.tenants_admitted + engine.fold.tenants_thinned
        )
        assert fold_total == engine.fold.tenants_admitted

    def test_direct_scheme_never_uses_the_proxy_pool(self):
        result = OpenLoopEngine(_short_config(scheme="baseline")).run()
        assert result.strategy == "none"
        assert result.jobs_proxied == 0
        assert result.jobs_direct == result.jobs_launched

    def test_proxied_scheme_routes_through_the_pool(self):
        result = OpenLoopEngine(_short_config(scheme="streamlined")).run()
        assert result.strategy == "central"
        assert result.jobs_proxied == result.jobs_launched

    def test_same_seed_same_digest(self):
        a = OpenLoopEngine(_short_config()).run()
        b = OpenLoopEngine(_short_config()).run()
        assert a.digest == b.digest

    def test_different_seed_different_digest(self):
        a = OpenLoopEngine(_short_config(seed=3)).run()
        b = OpenLoopEngine(_short_config(seed=4)).run()
        assert a.digest != b.digest

    def test_load_factor_scales_arrivals(self):
        light = OpenLoopEngine(_short_config(load_factor=0.5)).run()
        heavy = OpenLoopEngine(_short_config(load_factor=2.0)).run()
        assert heavy.tenants > light.tenants

    def test_sketch_and_exact_modes_agree_on_counts(self):
        sketch = OpenLoopEngine(_short_config()).run()
        exact = OpenLoopEngine(
            _short_config(metrics=MetricsConfig())
        ).run()
        assert sketch.tenants == exact.tenants
        assert sketch.jobs_completed == exact.jobs_completed
        assert sketch.bytes_completed == exact.bytes_completed
        assert sketch.ict.count == exact.ict.count
        assert math.isclose(sketch.ict.mean, exact.ict.mean, rel_tol=1e-9)

    def test_predictor_gate_observes_after_deciding(self):
        # Poisson arrivals carry no rhythm, so the predictor should stage
        # (almost) nothing — every job runs direct, honestly.
        result = OpenLoopEngine(
            _short_config(pattern_predictor=True)
        ).run()
        assert result.jobs_direct > 0
        assert result.jobs_proxied < result.jobs_launched


class TestRssPlateau:
    def test_needs_enough_samples(self):
        with pytest.raises(ConfigError, match="8 RSS samples"):
            rss_plateau_ok([(0, 100)] * 7)

    def test_flat_track_passes(self):
        track = [(i, 50_000) for i in range(12)]
        assert rss_plateau_ok(track)

    def test_mild_growth_within_tolerance_passes(self):
        track = [(i, 50_000 + i * 100) for i in range(12)]
        assert rss_plateau_ok(track, tolerance=0.15)

    def test_unbounded_growth_fails(self):
        track = [(i, 50_000 + i * 20_000) for i in range(12)]
        assert not rss_plateau_ok(track, tolerance=0.15)

    def test_zero_samples_platform_is_a_pass(self):
        track = [(i, 0) for i in range(12)]
        assert rss_plateau_ok(track)
