"""Host-stack latency models: calibration against the paper's §5 anchors."""

import random

import pytest

from repro.errors import ConfigError
from repro.hoststack import (
    Constant,
    LatencyPipeline,
    Lognormal,
    Mixture,
    ebpf_forward_path_pipeline,
    ebpf_reverse_path_pipeline,
    measure_pipeline,
    sampler_for_sim,
    userspace_proxy_pipeline,
    wire_to_wire_pipeline,
)
from repro.hoststack.components import fixed
from repro.units import microseconds


class TestDistributions:
    def test_constant(self):
        dist = Constant(1234)
        assert dist.sample(random.Random(0)) == 1234
        assert dist.percentile(99) == 1234

    def test_lognormal_median_calibration(self):
        dist = Lognormal(microseconds(10), microseconds(50))
        assert dist.percentile(50) == pytest.approx(microseconds(10), rel=1e-6)
        assert dist.percentile(99) == pytest.approx(microseconds(50), rel=1e-3)

    def test_lognormal_empirical_matches_analytic(self):
        dist = Lognormal(microseconds(5), microseconds(20))
        rng = random.Random(1)
        samples = sorted(dist.sample(rng) for _ in range(200_000))
        median = samples[len(samples) // 2]
        assert median == pytest.approx(microseconds(5), rel=0.02)

    def test_lognormal_shift(self):
        dist = Lognormal(microseconds(10), microseconds(20), shift_ps=microseconds(5))
        rng = random.Random(2)
        assert all(dist.sample(rng) >= microseconds(5) for _ in range(1000))
        assert dist.percentile(50) == pytest.approx(microseconds(10), rel=1e-6)

    def test_lognormal_validation(self):
        with pytest.raises(ConfigError):
            Lognormal(0, 10)
        with pytest.raises(ConfigError):
            Lognormal(10, 5)
        with pytest.raises(ConfigError):
            Lognormal(10, 20, shift_ps=15)

    def test_degenerate_lognormal_is_constant(self):
        dist = Lognormal(100, 100)
        assert dist.sample(random.Random(0)) == 100

    def test_mixture_weights(self):
        dist = Mixture([(0.5, Constant(1)), (0.5, Constant(1000))])
        rng = random.Random(3)
        draws = [dist.sample(rng) for _ in range(2000)]
        low = sum(1 for d in draws if d == 1)
        assert 800 < low < 1200

    def test_mixture_validation(self):
        with pytest.raises(ConfigError):
            Mixture([])
        with pytest.raises(ConfigError):
            Mixture([(-1, Constant(1)), (0.5, Constant(2))])


class TestPipelines:
    def test_pipeline_sums_stages(self):
        pipeline = LatencyPipeline("p", [fixed("a", 100), fixed("b", 200)])
        assert pipeline.sample(random.Random(0)) == 300
        assert pipeline.stage_names() == ["a", "b"]
        assert pipeline.sample_breakdown(random.Random(0)) == {"a": 100, "b": 200}

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            LatencyPipeline("p", [])

    def test_measurement_percentiles_monotone(self):
        m = measure_pipeline(userspace_proxy_pipeline(), packets=20_000, seed=1)
        table = m.table()
        values = list(table.values())
        assert values == sorted(values)

    def test_measurement_is_deterministic(self):
        a = measure_pipeline(ebpf_forward_path_pipeline(), packets=1000, seed=9)
        b = measure_pipeline(ebpf_forward_path_pipeline(), packets=1000, seed=9)
        assert a.samples_ps == b.samples_ps

    def test_sampler_for_sim(self):
        sampler = sampler_for_sim(ebpf_forward_path_pipeline(), seed=0)
        draws = [sampler() for _ in range(100)]
        assert all(isinstance(d, int) and d > 0 for d in draws)
        assert len(set(draws)) > 1


class TestPaperAnchors:
    """The calibration targets from paper §5 (Figures 4 and 5)."""

    def test_fig4_userspace_p99(self):
        m = measure_pipeline(userspace_proxy_pipeline(), packets=150_000, seed=0)
        assert m.percentile_us(99) == pytest.approx(359.17, rel=0.10)

    def test_fig5a_ebpf_forward_median(self):
        m = measure_pipeline(ebpf_forward_path_pipeline(), packets=150_000, seed=0)
        assert m.percentile_us(50) == pytest.approx(0.42, rel=0.05)

    def test_fig5a_reverse_path_is_cheaper(self):
        fwd = measure_pipeline(ebpf_forward_path_pipeline(), packets=50_000, seed=0)
        rev = measure_pipeline(ebpf_reverse_path_pipeline(), packets=50_000, seed=0)
        assert rev.percentile_us(50) < fwd.percentile_us(50)

    def test_fig5b_wire_to_wire_median(self):
        m = measure_pipeline(wire_to_wire_pipeline(), packets=150_000, seed=0)
        assert m.percentile_us(50) == pytest.approx(325.92, rel=0.05)

    def test_ebpf_is_orders_of_magnitude_below_userspace(self):
        ebpf = measure_pipeline(ebpf_forward_path_pipeline(), packets=20_000, seed=0)
        user = measure_pipeline(userspace_proxy_pipeline(), packets=20_000, seed=0)
        assert user.percentile_us(50) / ebpf.percentile_us(50) > 50

    def test_upper_bound_dwarfs_proxy_logic(self):
        # The paper's point: the wire-to-wire cost is dominated by the stack,
        # not the proxy program itself.
        ebpf = measure_pipeline(ebpf_forward_path_pipeline(), packets=20_000, seed=0)
        upper = measure_pipeline(wire_to_wire_pipeline(), packets=20_000, seed=0)
        assert ebpf.percentile_us(50) / upper.percentile_us(50) < 0.01
