"""Time-series sampling and convergence analysis."""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError, ExperimentError
from repro.experiments.convergence import compare_convergence, measure_convergence
from repro.experiments.runner import IncastScenario
from repro.metrics.timeseries import Sampler, TimeSeries
from repro.sim.simulator import Simulator
from repro.units import megabytes, microseconds, milliseconds


class TestTimeSeries:
    def test_observe_and_len(self):
        series = TimeSeries("x", 100)
        series.observe(0, 1.0)
        series.observe(100, 2.0)
        assert len(series) == 2
        assert series.peak() == 2.0

    def test_rate_per_second(self):
        series = TimeSeries("bytes", microseconds(1))
        # 1000 bytes per microsecond = 1e9 bytes/s
        for i in range(4):
            series.observe(i * microseconds(1), i * 1000.0)
        rates = series.rate_per_second()
        assert len(rates) == 3
        assert all(r == pytest.approx(1e9) for r in rates.values)

    def test_rate_of_empty_series(self):
        assert len(TimeSeries("x", 1).rate_per_second()) == 0


class TestSampler:
    def test_samples_on_cadence(self):
        sim = Simulator()
        sampler = Sampler(sim, interval_ps=100)
        counter = [0]
        sink = sampler.probe("count", lambda: counter[0])
        sim.schedule(250, lambda: counter.__setitem__(0, 7))
        sampler.start()
        sim.schedule(1000, sampler.stop)
        sim.run(until=2000)
        series = sink.to_timeseries()
        assert series.times[:4] == [0, 100, 200, 300]
        assert series.values[3] == 7.0

    def test_stop_ends_sampling(self):
        sim = Simulator()
        sampler = Sampler(sim, interval_ps=10)
        sampler.probe("x", lambda: 1.0)
        sampler.start()
        sim.run(max_events=5)
        sampler.stop()
        n = len(sampler.snapshot()["x"])
        sim.run(until=10_000)
        assert len(sampler.snapshot()["x"]) <= n + 1

    def test_max_samples_bounds_runaway(self):
        sim = Simulator()
        sampler = Sampler(sim, interval_ps=1, max_samples=50)
        sampler.probe("x", lambda: 0.0)
        sampler.start()
        sim.run(until=10_000)
        assert len(sampler.snapshot()["x"]) == 50

    def test_duplicate_probe_rejected(self):
        sampler = Sampler(Simulator(), interval_ps=1)
        sampler.probe("x", lambda: 0.0)
        with pytest.raises(ConfigError):
            sampler.probe("x", lambda: 0.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigError):
            Sampler(Simulator(), interval_ps=0)


class TestConvergence:
    @pytest.fixture(scope="class")
    def results(self):
        base = IncastScenario(
            degree=4,
            total_bytes=megabytes(24),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096),
        )
        return compare_convergence(base)

    def test_all_schemes_complete(self, results):
        assert all(r.completed for r in results.values())

    def test_proxies_converge_baseline_does_not(self, results):
        """The paper's Insight #2, measured: with the proxy, goodput reaches
        and holds 80% of the bottleneck almost immediately; direct senders
        never sustain it."""
        assert results["naive"].convergence_time_ps is not None
        assert results["streamlined"].convergence_time_ps is not None
        assert results["baseline"].convergence_time_ps is None

    def test_proxy_utilization_near_full(self, results):
        assert results["naive"].mean_utilization > 0.85
        assert results["streamlined"].mean_utilization > 0.85
        assert results["baseline"].mean_utilization < 0.3

    def test_baseline_wastes_most_of_its_lifetime(self, results):
        baseline = results["baseline"]
        assert baseline.underutilized_ps > 0.8 * baseline.ict_ps

    def test_utilization_series_fractions(self, results):
        for result in results.values():
            for _, fraction in result.utilization_series():
                assert fraction >= 0
                # transient bursts may exceed 1 briefly (queue drain), but
                # never the 8:1 leaf fan-in
                assert fraction < 8

    def test_target_fraction_validation(self):
        scenario = IncastScenario(interdc=small_interdc_config())
        with pytest.raises(ExperimentError):
            measure_convergence(scenario, target_fraction=0)

    def test_unknown_scheme_rejected(self):
        scenario = IncastScenario(interdc=small_interdc_config())
        with pytest.raises(ExperimentError):
            compare_convergence(scenario, schemes=("baseline", "warp"))
