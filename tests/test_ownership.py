"""The packet-ownership static pass (repro.analysis.ownership).

Each analysis is exercised on minimal source snippets: the deliberate-bug
shapes must fire, and the idiomatic pool usage in the tree (release on
every path, forward-and-forget, deferred emission) must stay quiet.
"""

import ast
import textwrap

from repro.analysis.ownership import (
    find_pool_leaks,
    find_sync_alloc_in_delivery,
    find_use_after_release,
    is_pool_acquire,
)


def _findings(finder, source):
    tree = ast.parse(textwrap.dedent(source))
    return list(finder(tree))


class TestAcquireDetection:
    def test_pool_receivers_match(self):
        for snippet in (
            "pool.data(1)", "self.pool.nack(1)",
            "self.sim.packet_pool.ack(1)",
        ):
            assert is_pool_acquire(ast.parse(snippet).body[0].value)

    def test_non_pool_receivers_do_not(self):
        for snippet in ("self.data(1)", "pool.take()", "frame.nack(1)"):
            assert not is_pool_acquire(ast.parse(snippet).body[0].value)


class TestPoolLeaks:
    def test_early_return_leaks(self):
        found = _findings(find_pool_leaks, """
            def emit(self, flow_id):
                pulse = self.pool.nack(flow_id, 0, 1, 2)
                if self.done:
                    return None
                self.host.send(pulse)
        """)
        assert len(found) == 1
        node, message = found[0]
        assert "'pulse'" in message
        assert node.lineno == 3  # anchored at the acquire, not the return

    def test_fallthrough_leaks(self):
        found = _findings(find_pool_leaks, """
            def emit(self):
                pulse = self.pool.nack(1, 0, 1, 2)
                self.count += 1
        """)
        assert len(found) == 1

    def test_release_on_every_path_is_clean(self):
        assert not _findings(find_pool_leaks, """
            def emit(self, flow_id):
                pulse = self.pool.nack(flow_id, 0, 1, 2)
                if self.done:
                    pulse.release()
                    return None
                self.host.send(pulse)
        """)

    def test_forwarding_consumes(self):
        # Passing to any call, returning, or aliasing transfers ownership.
        assert not _findings(find_pool_leaks, """
            def a(self):
                p = self.pool.data(1, 0, 1, 2, 100)
                return p

            def b(self):
                p = self.pool.data(1, 0, 1, 2, 100)
                self.queue.append(p)

            def c(self):
                p = self.pool.data(1, 0, 1, 2, 100)
                self.pending = p
        """)

    def test_raise_path_leaks(self):
        found = _findings(find_pool_leaks, """
            def emit(self):
                p = self.pool.ack(1, 0, 1, ack_seq=0, echo_seq=0,
                                  ecn_echo=False, ts_echo=-1)
                if p.size_bytes > self.mtu:
                    raise ValueError("oversized")
                self.host.send(p)
        """)
        assert len(found) == 1

    def test_one_finding_per_acquire(self):
        # Two leaky exits from one acquire report once, at the acquire.
        found = _findings(find_pool_leaks, """
            def emit(self):
                p = self.pool.nack(1, 0, 1, 2)
                if self.a:
                    return 1
                if self.b:
                    return 2
                self.host.send(p)
        """)
        assert len(found) == 1


class TestUseAfterRelease:
    def test_stale_read_after_release(self):
        found = _findings(find_use_after_release, """
            def on_ack(self, packet):
                packet.release()
                self.bytes_seen += packet.size_bytes
        """)
        assert len(found) == 1
        assert "after release()" in found[0][1]

    def test_double_release_is_a_stale_load(self):
        found = _findings(find_use_after_release, """
            def on_ack(self, packet):
                packet.release()
                packet.release()
        """)
        assert len(found) == 1

    def test_pool_give_counts_as_release(self):
        found = _findings(find_use_after_release, """
            def drop(self, packet):
                self.pool.give(packet)
                return packet.flow_id
        """)
        assert len(found) == 1

    def test_release_then_exit_is_clean(self):
        assert not _findings(find_use_after_release, """
            def on_ack(self, packet):
                seq = packet.ack_seq
                packet.release()
                return seq
        """)

    def test_branch_local_release_only_poisons_that_path(self):
        # Released in one branch, used in the other: the use is fine, the
        # merge afterwards is not.
        assert not _findings(find_use_after_release, """
            def on_packet(self, packet):
                if packet.corrupted:
                    packet.release()
                    return None
                self.host.send(packet)
        """)
        found = _findings(find_use_after_release, """
            def on_packet(self, packet):
                if packet.corrupted:
                    packet.release()
                self.count += packet.size_bytes
        """)
        assert len(found) == 1

    def test_rebinding_clears_the_poison(self):
        assert not _findings(find_use_after_release, """
            def pump(self):
                packet = self.pool.nack(1, 0, 1, 2)
                packet.release()
                packet = self.pool.nack(2, 0, 1, 2)
                self.host.send(packet)
        """)


class TestSyncAllocInDelivery:
    PULSER_SHAPE = """
        def watch(self, conn):
            inner = self.host.handlers[conn.flow_id]

            def tap(packet, _inner=inner):
                _inner(packet)
                pulse = self.pool.nack(conn.flow_id, 0, 1, 2)
                self.host.send(pulse)
    """

    def test_pulser_tap_shape_fires(self):
        found = _findings(find_sync_alloc_in_delivery, self.PULSER_SHAPE)
        assert len(found) == 1
        assert "tap" in found[0][1]
        assert "sim.schedule(0" in found[0][1]

    def test_deferred_emission_is_clean(self):
        # The fixed pulser: the tap only observes; allocation happens in a
        # separately scheduled callback that is not itself a tap.
        assert not _findings(find_sync_alloc_in_delivery, """
            def watch(self, conn):
                inner = self.host.handlers[conn.flow_id]

                def tap(packet, _inner=inner):
                    self.backend.observe(packet.src)
                    _inner(packet)
                    self.sim.schedule(0, self._emit)

            def _emit(self):
                pulse = self.pool.nack(1, 0, 1, 2)
                self.host.send(pulse)
        """)

    def test_method_dispatch_is_not_a_tap(self):
        # Receivers hand packets to component *methods*; that is normal
        # delivery, not interposition.
        assert not _findings(find_sync_alloc_in_delivery, """
            def on_packet(self, packet):
                self.receiver.handle(packet)
                ack = self.pool.ack(1, 0, 1, ack_seq=0, echo_seq=0,
                                    ecn_echo=False, ts_echo=-1)
                self.host.send(ack)
        """)

    def test_functions_without_packet_params_are_skipped(self):
        assert not _findings(find_sync_alloc_in_delivery, """
            def emit(self, deliver):
                deliver(self.frame)
                pulse = self.pool.nack(1, 0, 1, 2)
                self.host.send(pulse)
        """)
