"""Deliberately hazardous module that trips every determinism-lint rule.

Never imported by the package or the tests — it exists as ground truth for
``tests/test_lint.py`` and the CI job, which assert that
``python -m repro lint tests/fixtures/lint_bad_example.py`` exits non-zero
and reports every rule in the catalogue.
"""

import heapq
import random
import time


def bad_event_queue():
    """Hand-rolled heapq event queue instead of the kernel scheduler."""
    queue = []
    heapq.heappush(queue, (0, "boot"))
    return heapq.heappop(queue)


def bad_jitter():
    """Draws entropy from the OS pool and the wall clock."""
    rng = random.Random()
    return rng.random() + time.time()


def bad_schedule(pending={1, 2, 3}):
    """Hash-ordered scheduling keyed on allocation addresses."""
    order = {}
    for flow in set(pending):
        order[id(flow)] = flow
    return order


def bad_deadline(now):
    """Exact float comparison in time logic."""
    return now == 0.001


def bad_nack_path(self, flow_id, seq):
    """Acquires a NACK the early-return path never releases or sends."""
    nack = self.pool.nack(flow_id, seq, 0, 1)
    if seq > self.cum:
        return None
    self.host.send(nack)
    return nack


def bad_stale_read(self, packet):
    """Reads (and re-releases) a packet after it went back to the pool."""
    packet.release()
    self.bytes_seen += packet.size
    packet.release()


def bad_watch(self, inner):
    """The pulser reentrancy bug: allocate-and-send inside a delivery tap."""
    def tap(packet, _inner=inner):
        _inner(packet)
        pulse = self.pool.nack(packet.flow_id, 0, self.host.id, 1)
        self.host.send(pulse)
    return tap
