"""Streamlined proxying through *multiple* proxies on one connection.

The loose source routing generalizes: ``via=(p0, p1)`` threads one
end-to-end connection through two streamlined proxies (e.g. one per
datacenter boundary of a chain).  Each proxy reflects trims arriving *at
it* and forwards everything else; ACKs retrace the full reverse route.
"""

import pytest

from repro.config import FabricConfig, QueueSpec, TransportConfig
from repro.proxy.streamlined import StreamlinedProxy
from repro.topology.multidc import MultiDcConfig, build_multidc
from repro.transport.connection import Connection
from repro.units import kilobytes, megabytes, milliseconds


def chain_topo(sim, trimming=True):
    fabric = FabricConfig(
        spines=2, leaves=2, servers_per_leaf=4,
        switch_queue=QueueSpec(kind="ecn", capacity_bytes=megabytes(4),
                               ecn_low_bytes=kilobytes(33.2),
                               ecn_high_bytes=kilobytes(136.95)),
    )
    cfg = MultiDcConfig(
        fabric=fabric,
        segment_delays_ps=(milliseconds(1), milliseconds(5)),
        backbone_per_spine=2,
        backbone_queue=QueueSpec(kind="ecn", capacity_bytes=megabytes(12),
                                 ecn_low_bytes=megabytes(2.5),
                                 ecn_high_bytes=megabytes(10)),
        trimming=trimming,
    )
    return build_multidc(sim, cfg)


class TestTwoProxyChain:
    def test_connection_via_two_proxies_completes(self, sim, transport_cfg):
        topo = chain_topo(sim)
        senders = topo.hosts(0)[:4]
        p0 = topo.hosts(0)[-1]
        p1 = topo.hosts(1)[0]
        receiver = topo.hosts(2)[0]
        proxy0 = StreamlinedProxy(sim, p0)
        proxy1 = StreamlinedProxy(sim, p1)
        conns = []
        for host in senders:
            conn = Connection(topo.net, host, receiver, megabytes(4),
                              transport_cfg, via=(p0, p1))
            proxy0.attach(conn)
            proxy1.attach(conn)
            conns.append(conn)
            conn.start()
        sim.run(until=milliseconds(5000))
        assert all(c.completed for c in conns)
        # both proxies moved data and control
        assert proxy0.stats.data_forwarded > 0
        assert proxy1.stats.data_forwarded > 0
        assert proxy0.stats.control_forwarded > 0  # ACKs retrace the chain
        assert proxy1.stats.control_forwarded > 0

    def test_first_proxy_absorbs_the_incast_trims(self, sim, transport_cfg):
        topo = chain_topo(sim)
        senders = topo.hosts(0)[:4]
        p0 = topo.hosts(0)[-1]
        p1 = topo.hosts(1)[0]
        receiver = topo.hosts(2)[0]
        proxy0 = StreamlinedProxy(sim, p0)
        proxy1 = StreamlinedProxy(sim, p1)
        conns = []
        for host in senders:
            conn = Connection(topo.net, host, receiver, megabytes(4),
                              transport_cfg, via=(p0, p1))
            proxy0.attach(conn)
            proxy1.attach(conn)
            conn.cc.cwnd = conn.total_packets  # burst
            conns.append(conn)
            conn.start()
        sim.run(until=milliseconds(5000))
        assert all(c.completed for c in conns)
        # the incast converges at proxy0's down-ToR; proxy1 sees a clean
        # single-rate stream and absorbs (essentially) nothing
        assert proxy0.stats.trimmed_absorbed > 0
        assert proxy1.stats.trimmed_absorbed <= proxy0.stats.trimmed_absorbed / 10
        # no trimmed header ever leaks to the receiver
        assert all(c.receiver.stats.trimmed_headers == 0 for c in conns)
