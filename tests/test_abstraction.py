"""The incast programming abstraction and the deployment planner."""

import pytest

from repro.abstraction import AppGraph, DeploymentPlanner
from repro.config import TransportConfig, small_interdc_config
from repro.errors import ConfigError
from repro.units import kilobytes


def moe_like_app():
    app = AppGraph("trainer")
    app.add_component("workers", replicas=4)
    app.add_component("expert", replicas=1)
    app.declare_incast("dispatch", senders=["workers"], receiver="expert",
                       bytes_per_burst=kilobytes(20_000), periodic=True)
    return app


class TestAppGraph:
    def test_declare_components_and_incast(self):
        app = moe_like_app()
        assert app.components["workers"].replicas == 4
        assert app.incasts[0].periodic
        assert app.sender_instances(app.incasts[0]) == 4

    def test_duplicate_component_rejected(self):
        app = AppGraph("x")
        app.add_component("a")
        with pytest.raises(ConfigError):
            app.add_component("a")

    def test_unknown_component_in_incast_rejected(self):
        app = AppGraph("x")
        app.add_component("a")
        with pytest.raises(ConfigError):
            app.declare_incast("i", senders=["ghost"], receiver="a", bytes_per_burst=1)

    def test_receiver_cannot_send(self):
        app = AppGraph("x")
        app.add_component("a")
        app.add_component("b")
        with pytest.raises(ConfigError):
            app.declare_incast("i", senders=["a", "b"], receiver="b", bytes_per_burst=1)


class TestPlanner:
    def test_cross_dc_incast_is_planned(self):
        app = moe_like_app()
        planner = DeploymentPlanner(app, {"workers": 0, "expert": 1})
        plan = planner.plan()
        assert len(plan.interdc_incasts) == 1
        job = plan.jobs()[0]
        assert job.degree == 4
        assert job.total_bytes == kilobytes(20_000)

    def test_colocated_incast_not_rewritten(self):
        app = moe_like_app()
        planner = DeploymentPlanner(app, {"workers": 0, "expert": 0})
        plan = planner.plan()
        assert plan.interdc_incasts == []
        assert not plan.planned[0].crosses_datacenters

    def test_slots_are_disjoint_per_dc(self):
        app = AppGraph("x")
        app.add_component("a", replicas=3)
        app.add_component("b", replicas=2)
        app.add_component("rx", replicas=1)
        planner = DeploymentPlanner(app, {"a": 0, "b": 0, "rx": 1})
        assert set(planner.slots("a")) & set(planner.slots("b")) == set()
        assert planner.slots("rx") == (0,)

    def test_missing_placement_rejected(self):
        app = moe_like_app()
        with pytest.raises(ConfigError):
            DeploymentPlanner(app, {"workers": 0})

    def test_invalid_dc_rejected(self):
        app = moe_like_app()
        with pytest.raises(ConfigError):
            DeploymentPlanner(app, {"workers": 0, "expert": 7})

    def test_reverse_direction_unsupported_for_now(self):
        app = moe_like_app()
        planner = DeploymentPlanner(app, {"workers": 1, "expert": 0})
        with pytest.raises(ConfigError):
            planner.plan()

    def test_execute_proxied_beats_unproxied(self):
        app = moe_like_app()
        planner = DeploymentPlanner(app, {"workers": 0, "expert": 1})
        plan = planner.plan()
        transport = TransportConfig(payload_bytes=4096)
        cfg = small_interdc_config()
        with_proxy = planner.execute(plan, proxied=True, interdc=cfg, transport=transport)
        without = planner.execute(plan, proxied=False, interdc=cfg, transport=transport)
        assert with_proxy.completed and without.completed
        assert with_proxy.mean_ict_ps < without.mean_ict_ps

    def test_execute_without_interdc_incasts_rejected(self):
        app = moe_like_app()
        planner = DeploymentPlanner(app, {"workers": 0, "expert": 0})
        plan = planner.plan()
        with pytest.raises(ConfigError):
            planner.execute(plan)
