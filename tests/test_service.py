"""The distributed sweep service: journal semantics, engine, kill-and-resume."""

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import ExperimentError
from repro.experiments.parallel import ResultCache
from repro.experiments.runner import IncastScenario
from repro.experiments.service import (
    Coordinator,
    QueueEngine,
    WorkQueue,
    batch_fingerprint,
    cells_from_spec,
    named_grid,
)
from repro.experiments.sweeps import (
    degree_sweep_spec,
    run_sweep_spec,
    sweep_digest,
)
from repro.telemetry import RunOptions
from repro.units import kilobytes

KEYS = ["k0", "k1", "k2"]
FP = batch_fingerprint(KEYS)


def _base():
    return IncastScenario(
        degree=2,
        total_bytes=kilobytes(100),
        interdc=small_interdc_config(),
        transport=TransportConfig(payload_bytes=4096),
    )


def _tiny_spec():
    return degree_sweep_spec(
        _base(), (2,), ("baseline", "naive"), reps=2, seed0=0
    )


class TestWorkQueue:
    def _queue(self, tmp_path, keys=KEYS, fingerprint=FP):
        queue = WorkQueue(tmp_path / "journal.db")
        queue.initialize(fingerprint, keys)
        return queue

    def test_lease_grants_in_index_order(self, tmp_path):
        queue = self._queue(tmp_path)
        assert queue.lease("w1", 2, 60.0, now=0.0) == [(0, "k0"), (1, "k1")]
        assert queue.lease("w2", 5, 60.0, now=0.0) == [(2, "k2")]
        assert queue.lease("w2", 1, 60.0, now=0.0) == []
        queue.close()

    def test_complete_is_exactly_once(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.lease("w1", 1, 60.0, now=0.0)
        assert queue.complete(0, source="executed", elapsed=0.1)
        assert not queue.complete(0, source="executed", elapsed=0.1)
        assert queue.cell_status(0) == "done"
        queue.close()

    def test_fail_is_terminal_and_first_wins(self, tmp_path):
        queue = self._queue(tmp_path)
        assert queue.fail(1, "exception", "boom")
        assert not queue.fail(1, "timeout", "late")
        [(index, kind, message, _attempts, _elapsed)] = queue.failed_cells()
        assert (index, kind, message) == (1, "exception", "boom")
        assert not queue.all_terminal()
        queue.complete(0, source="executed")
        queue.complete(2, source="executed")
        assert queue.all_terminal()
        queue.close()

    def test_expired_lease_requeues_with_attempt_count(self, tmp_path):
        queue = self._queue(tmp_path)
        assert queue.lease("w1", 1, 10.0, now=100.0) == [(0, "k0")]
        # Before the TTL the cell stays leased; w2 gets the next one.
        assert queue.lease("w2", 1, 10.0, now=105.0) == [(1, "k1")]
        # Past the TTL the dead worker's cell is granted again.
        assert queue.lease("w3", 3, 10.0, now=111.0) == [(0, "k0"), (2, "k2")]
        queue.close()

    def test_attempt_cap_fails_the_cell_as_worker_crash(self, tmp_path):
        queue = self._queue(tmp_path)
        now = 0.0
        for _ in range(3):  # three granted leases, all expire
            assert (0, "k0") in queue.lease("w", 1, 1.0, now=now)
            queue.release("w")
            now += 10.0
        # The capped cell flips to failed; the grant moves on to the next.
        assert queue.lease("w", 1, 1.0, now=now, max_cell_attempts=3) == [
            (1, "k1")
        ]
        [(index, kind, _message, attempts, _elapsed)] = queue.failed_cells()
        assert (index, kind, attempts) == (0, "worker-crash", 3)
        queue.close()

    def test_release_requeues_a_dead_workers_cells(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.lease("w1", 2, 60.0, now=0.0)
        assert queue.release("w1") == 2
        assert queue.cell_status(0) == "pending"
        assert queue.lease("w2", 1, 60.0, now=0.0) == [(0, "k0")]
        queue.close()

    def test_initialize_rejects_a_different_grid(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.close()
        other = WorkQueue(tmp_path / "journal.db")
        with pytest.raises(ExperimentError, match="different grid"):
            other.initialize(batch_fingerprint(["x"]), ["x"])
        other.close()

    def test_reopen_resets_leases_and_failures_but_keeps_done(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.complete(2, source="executed")
        queue.lease("w1", 1, 60.0, now=0.0)
        queue.fail(1, "exception", "boom")
        queue.close()
        resumed = self._queue(tmp_path)
        assert resumed.counts() == {"pending": 2, "done": 1}
        assert resumed.lease("w2", 1, 60.0, now=0.0) == [(0, "k0")]
        resumed.close()


class TestQueueEngine:
    def test_requires_a_cache(self):
        with pytest.raises(ExperimentError, match="cache"):
            QueueEngine(workers=1, cache=None)

    def test_rejects_cache_bypassing_options(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ExperimentError, match="cache-bypassing"):
            QueueEngine(
                workers=1, cache=cache, options=RunOptions(sanitize=True)
            )


class TestCoordinatorValidation:
    def test_rejects_empty_and_misindexed_batches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with pytest.raises(ExperimentError, match="at least one cell"):
            Coordinator([], cache)
        cells = cells_from_spec(_tiny_spec())
        with pytest.raises(ExperimentError, match="contiguously"):
            Coordinator(cells[1:], cache)
        with pytest.raises(ExperimentError, match="workers"):
            Coordinator(cells, cache, workers=-1)
        with pytest.raises(ExperimentError, match="lease_ttl"):
            Coordinator(cells, cache, lease_ttl_s=0.0)

    def test_named_grids(self):
        assert len(named_grid("bakeoff-smoke")) == 6
        with pytest.raises(ExperimentError):
            named_grid("no-such-grid")


def _run_cli(args, cwd):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "service", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=240,
    )


def _parse_summary(stdout):
    digest = counts = None
    for line in stdout.splitlines():
        if line.startswith("sweep_digest: "):
            digest = line.split(": ", 1)[1]
        if line.startswith("service: "):
            counts = dict(
                field.split("=") for field in line.split(" ", 1)[1].split()
            )
    return digest, counts


class TestServiceEndToEnd:
    def test_queue_engine_matches_serial_digest(self, tmp_path):
        spec = _tiny_spec()
        serial = run_sweep_spec(
            spec, workers=1, cache=ResultCache(tmp_path / "serial")
        )
        engine = QueueEngine(workers=2, cache=ResultCache(tmp_path / "queue"))
        queued = run_sweep_spec(spec, engine=engine)
        assert sweep_digest(queued) == sweep_digest(serial)
        assert engine.stats.failures == 0
        assert engine.stats.cache_misses == len(spec)
        # A second pass over the same cache resumes everything.
        resumed_engine = QueueEngine(
            workers=2, cache=ResultCache(tmp_path / "queue")
        )
        resumed = run_sweep_spec(spec, engine=resumed_engine)
        assert sweep_digest(resumed) == sweep_digest(serial)
        assert resumed_engine.stats.cache_hits == len(spec)
        assert resumed_engine.stats.cache_misses == 0

    def test_coordinator_kill_and_resume_runs_only_missing_cells(
        self, tmp_path
    ):
        spec = _tiny_spec()
        serial = sweep_digest(run_sweep_spec(
            spec, workers=1, cache=ResultCache(tmp_path / "serial")
        ))
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json() + "\n")
        common = ["--spec", str(spec_path), "--cache-dir",
                  str(tmp_path / "queue"), "--workers", "2"]

        killed = _run_cli(
            ["coordinate", *common, "--kill-after", "2"], tmp_path
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        status = _run_cli(
            ["status", "--spec", str(spec_path),
             "--cache-dir", str(tmp_path / "queue")], tmp_path
        )
        assert "done" in status.stdout

        resumed = _run_cli(["coordinate", *common], tmp_path)
        assert resumed.returncode == 0, resumed.stderr
        digest, counts = _parse_summary(resumed.stdout)
        assert digest == serial
        assert counts["failed"] == "0"
        # The journal survived the SIGKILL: at least the two acked cells
        # resume from cache, and only the remainder executes.
        assert int(counts["resumed"]) >= 2
        assert int(counts["executed"]) + int(counts["resumed"]) == len(spec)
        assert int(counts["executed"]) < len(spec)

    def test_worker_sigkill_mid_batch_still_completes(self, tmp_path):
        spec = _tiny_spec()
        serial = sweep_digest(run_sweep_spec(
            spec, workers=1, cache=ResultCache(tmp_path / "serial")
        ))
        cache = ResultCache(tmp_path / "queue")
        results = {}
        coordinator = Coordinator(
            cells_from_spec(spec), cache, workers=0, lease_ttl_s=1.0,
            on_result=lambda index, entry: results.__setitem__(index, entry),
        )
        summary = {}
        thread = threading.Thread(
            target=lambda: summary.setdefault("value", coordinator.run())
        )
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            while coordinator.port == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert coordinator.port != 0, "coordinator never bound its port"

            def spawn():
                env = dict(os.environ)
                src = str(Path(__file__).resolve().parent.parent / "src")
                env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
                return subprocess.Popen(
                    [sys.executable, "-m", "repro", "service", "work",
                     "--host", "127.0.0.1", "--port", str(coordinator.port)],
                    env=env, cwd=tmp_path,
                )

            victim = spawn()
            time.sleep(1.0)  # let it lease (and usually start) a cell
            victim.kill()
            victim.wait()
            survivor = spawn()
            thread.join(timeout=180.0)
            assert not thread.is_alive(), "coordinator never finished"
            survivor.wait(timeout=30.0)
        finally:
            thread.join(timeout=10.0)

        assert summary["value"].failed == 0
        assert summary["value"].executed + summary["value"].resumed == len(spec)
        from repro.experiments.grid import SweepFold

        fold = SweepFold(spec)
        for index in range(len(spec)):
            fold.add(index, results[index])
        assert sweep_digest(fold.finish()) == serial
