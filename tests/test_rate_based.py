"""The simplified BBR-like rate-based controller."""

import pytest

from repro.config import TransportConfig, small_interdc_config
from repro.errors import TransportError
from repro.experiments.runner import IncastScenario, run_incast
from repro.transport.rate_based import RateBased
from repro.units import gbps, megabytes, microseconds
from dataclasses import replace


def feed_acks(cc, start_ps, count, spacing_ps):
    now = start_ps
    for i in range(count):
        cc.on_ack(now, False, i, i + 1)
        now += spacing_ps
    return now


class TestRateBased:
    def make(self, cwnd=100.0, payload=4096, min_rtt=microseconds(100)):
        return RateBased(cwnd, payload_bytes=payload, min_rtt_ps=min_rtt)

    def test_estimates_delivery_rate_from_ack_spacing(self):
        cc = self.make()
        # 4096B per ack every 3.2768us = 10 Gb/s
        feed_acks(cc, 0, 40, round(4096 * 8 * 1e12 / gbps(10)))
        assert cc.btlbw_bps == pytest.approx(gbps(10), rel=0.01)

    def test_window_tracks_bdp(self):
        cc = self.make(min_rtt=microseconds(100))
        feed_acks(cc, 0, 40, round(4096 * 8 * 1e12 / gbps(10)))
        bdp_packets = gbps(10) * microseconds(100) / (8e12 * 4096)
        assert cc.cwnd == pytest.approx(cc.gain * bdp_packets, rel=0.02)

    def test_loss_signals_do_not_cut(self):
        cc = self.make()
        feed_acks(cc, 0, 40, 3_000_000)
        w = cc.cwnd
        cc.on_congestion(10**9, seq=5, snd_nxt=50, severe=True)
        cc.on_congestion(10**9 + 1, seq=6, snd_nxt=50, severe=True)
        assert cc.cwnd == w

    def test_timeout_resets_conservatively(self):
        cc = self.make(cwnd=800)
        feed_acks(cc, 0, 40, 3_000_000)
        cc.on_timeout(10**9, snd_nxt=100)
        assert cc.cwnd == 100  # startup/8
        assert cc.btlbw_bps == 0.0

    def test_window_recovers_after_timeout(self):
        cc = self.make()
        cc.on_timeout(10**9, snd_nxt=100)
        feed_acks(cc, 2 * 10**9, 40, round(4096 * 8 * 1e12 / gbps(10)))
        assert cc.btlbw_bps > 0
        assert cc.cwnd > cc.min_cwnd

    def test_max_filter_keeps_peak(self):
        cc = self.make()
        fast = round(4096 * 8 * 1e12 / gbps(10))
        now = feed_acks(cc, 0, 40, fast)
        peak = cc.btlbw_bps
        feed_acks(cc, now, 20, fast * 4)  # slower acks afterwards
        assert cc.btlbw_bps == pytest.approx(peak, rel=0.01)

    def test_validation(self):
        with pytest.raises(TransportError):
            RateBased(10, payload_bytes=0, min_rtt_ps=100)
        with pytest.raises(TransportError):
            RateBased(10, payload_bytes=100, min_rtt_ps=0)


class TestRateBasedEndToEnd:
    def test_incast_completes_under_bbr(self):
        scenario = IncastScenario(
            degree=4,
            total_bytes=megabytes(16),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096, cc="bbr"),
        )
        for scheme in ("baseline", "streamlined"):
            result = run_incast(replace(scenario, scheme=scheme))
            assert result.completed, scheme

    def test_proxy_still_wins_under_bbr(self):
        scenario = IncastScenario(
            degree=4,
            total_bytes=megabytes(24),
            interdc=small_interdc_config(),
            transport=TransportConfig(payload_bytes=4096, cc="bbr"),
        )
        base = run_incast(scenario)
        prox = run_incast(replace(scenario, scheme="streamlined"))
        assert prox.ict_ps < base.ict_ps
