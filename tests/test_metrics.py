"""Metrics utilities: CDFs, summaries, network counter collection."""

import pytest

from repro.errors import ReproError
from repro.metrics.cdf import EmpiricalCdf
from repro.metrics.collector import collect_network_counters
from repro.metrics.summary import summarize
from repro.net.packet import make_data
from repro.units import milliseconds
from tests.conftest import build_pair


class TestEmpiricalCdf:
    def test_basic_percentiles(self):
        cdf = EmpiricalCdf(range(1, 101))
        assert cdf.median == pytest.approx(50.5)
        assert cdf.percentile(0) == 1
        assert cdf.percentile(100) == 100
        assert cdf.mean == pytest.approx(50.5)

    def test_prob_le(self):
        cdf = EmpiricalCdf([1, 2, 3, 4])
        assert cdf.prob_le(2) == 0.5
        assert cdf.prob_le(0) == 0.0
        assert cdf.prob_le(10) == 1.0

    def test_points_monotone(self):
        cdf = EmpiricalCdf([5, 1, 9, 3, 7])
        points = cdf.points(11)
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs[0] == 0.0 and probs[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            EmpiricalCdf([])

    def test_bad_percentile_rejected(self):
        cdf = EmpiricalCdf([1])
        with pytest.raises(ReproError):
            cdf.percentile(101)

    def test_percentile_table(self):
        cdf = EmpiricalCdf(range(1000))
        table = cdf.percentile_table((50, 99))
        assert set(table) == {50, 99}
        assert table[50] < table[99]


class TestSummarize:
    def test_single_value(self):
        s = summarize([7.0])
        assert (s.mean, s.minimum, s.maximum, s.stdev, s.count) == (7.0, 7.0, 7.0, 0.0, 1)

    def test_mean_min_max(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.mean == 3 and s.minimum == 1 and s.maximum == 5
        assert s.stdev == pytest.approx(1.5811, rel=1e-3)

    def test_reduction_vs(self):
        base = summarize([100, 100])
        fast = summarize([25, 25])
        assert fast.reduction_vs(base) == pytest.approx(0.75)
        assert base.reduction_vs(base) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestNetworkCounters:
    def test_collects_tx_and_queue_stats(self, sim, transport_cfg):
        from repro.transport.connection import Connection
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 50_000, transport_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        counters = collect_network_counters(net)
        assert counters.tx_packets > 0
        assert counters.tx_bytes >= 50_000
        assert counters.packets_dropped == 0
        assert counters.max_queue_bytes > 0

    def test_hottest_ports_ranked(self, sim, transport_cfg):
        from repro.transport.connection import Connection
        net, a, b = build_pair(sim)
        conn = Connection(net, a, b, 50_000, transport_cfg)
        conn.start()
        sim.run(until=milliseconds(100))
        counters = collect_network_counters(net)
        from repro.metrics.sink import rank_hottest
        hottest = rank_hottest(counters.per_port_max, 3)
        depths = [d for _, d in hottest]
        assert depths == sorted(depths, reverse=True)
